"""Fault-injection layer: determinism, resilience and degradation.

Three contracts under test:

1. **Bit-identity when disabled** — ``FaultPlan.none()`` (and ``None``)
   leave every collector/campaign output identical to a fault-free build.
2. **Determinism when enabled** — the same plan + campaign seed produces
   identical runtimes, fault counters and fault logs for any ``jobs``
   count; decisions hash the (workload, VM, repetition, attempt) triple
   and never consume shared RNG state.
3. **Graceful degradation** — permanently failed probe runs downgrade an
   :class:`OnlineSession` (widened match threshold, ``degraded``
   recommendation) instead of crashing it.
"""

import pickle

import numpy as np
import pytest

from repro.cloud.faults import MIN_KEPT_SAMPLES, FaultDecision, FaultPlan
from repro.cloud.vmtypes import catalog
from repro.core.persistence import load_selector, save_selector
from repro.core.vesta import VestaSelector
from repro.errors import ProbeFailedError, TransientRunError, ValidationError
from repro.telemetry.campaign import ProfilingCampaign
from repro.telemetry.collector import DataCollector
from repro.telemetry.metrics import CampaignCounters
from repro.workloads.catalog import training_set

SPECS = training_set()[:2]
VMS = catalog()[:3]
REPS = 3

#: Retries but never exhausts the 8-attempt budget on the small grid.
SURVIVABLE = FaultPlan(
    transient_prob=0.25, straggle_prob=0.3, drop_prob=0.1, max_attempts=8, seed=5
)


class TestFaultPlanConstruction:
    def test_validation(self):
        with pytest.raises(ValidationError):
            FaultPlan(transient_prob=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(drop_prob=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(max_attempts=0)
        with pytest.raises(ValidationError):
            FaultPlan(straggle_alpha=0.0)
        with pytest.raises(ValidationError):
            FaultPlan(backoff_base_s=-1.0)

    def test_from_spec(self):
        plan = FaultPlan.from_spec(
            "transient=0.2, straggle=0.1, drop=0.05, scale=0.4, alpha=2, "
            "attempts=5, backoff=0.01, seed=3, workloads=spark-lr;hive-join, "
            "vms=m5.xlarge"
        )
        assert plan.transient_prob == 0.2
        assert plan.straggle_prob == 0.1
        assert plan.drop_prob == 0.05
        assert plan.straggle_scale == 0.4
        assert plan.straggle_alpha == 2.0
        assert plan.max_attempts == 5
        assert plan.backoff_base_s == 0.01
        assert plan.seed == 3
        assert plan.workloads == ("spark-lr", "hive-join")
        assert plan.vms == ("m5.xlarge",)

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            FaultPlan.from_spec("bogus=1")
        with pytest.raises(ValidationError):
            FaultPlan.from_spec("transient")
        with pytest.raises(ValidationError):
            FaultPlan.from_spec("transient=xyz")

    def test_from_env(self):
        env = {
            "REPRO_FAULT_TRANSIENT": "0.2",
            "REPRO_FAULT_SEED": "9",
            "REPRO_FAULT_VMS": "m5.large;c4.xlarge",
        }
        plan = FaultPlan.from_env(env)
        assert plan is not None
        assert plan.transient_prob == 0.2
        assert plan.seed == 9
        assert plan.vms == ("m5.large", "c4.xlarge")
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"UNRELATED": "1"}) is None

    def test_restriction(self):
        plan = SURVIVABLE.restricted_to(workloads=("spark-lr",), vms=("m5.large",))
        assert plan.applies_to("spark-lr", "m5.large")
        assert not plan.applies_to("spark-lr", "m5.xlarge")
        assert not plan.applies_to("hive-join", "m5.large")
        assert SURVIVABLE.applies_to("anything", "anywhere")

    def test_enabled(self):
        assert not FaultPlan.none().enabled
        assert not FaultPlan(straggle_scale=0.9).enabled
        assert FaultPlan(transient_prob=0.1).enabled
        assert FaultPlan(drop_prob=0.1).enabled

    def test_fingerprint(self):
        assert FaultPlan.none().fingerprint() == ""
        a = FaultPlan(transient_prob=0.2, seed=1).fingerprint()
        b = FaultPlan(transient_prob=0.2, seed=2).fingerprint()
        assert a and b and a != b
        assert FaultPlan(transient_prob=0.2, seed=1).fingerprint() == a


class TestFaultDecisions:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(transient_prob=0.3, straggle_prob=0.3, seed=4)
        for rep in range(5):
            first = plan.decide("spark-lr", "m5.xlarge", rep)
            again = plan.decide("spark-lr", "m5.xlarge", rep)
            assert first == again

    def test_decide_varies_with_coordinates(self):
        plan = FaultPlan(transient_prob=0.5, seed=4)
        outcomes = {
            plan.decide("spark-lr", "m5.xlarge", rep, attempt).transient
            for rep in range(10)
            for attempt in range(3)
        }
        assert outcomes == {True, False}

    def test_disabled_plan_is_clean(self):
        plan = FaultPlan.none()
        assert plan.decide("spark-lr", "m5.xlarge", 0) == FaultDecision()

    def test_check_raises_transient(self):
        plan = FaultPlan(transient_prob=1.0, seed=0)
        with pytest.raises(TransientRunError):
            plan.check("spark-lr", "m5.xlarge", 0)

    def test_backoff_schedule(self):
        plan = FaultPlan(transient_prob=0.5, backoff_base_s=0.5)
        assert [plan.backoff_s(a) for a in range(3)] == [0.5, 1.0, 2.0]

    def test_drop_mask_floor(self):
        plan = FaultPlan(drop_prob=1.0, seed=0)
        keep = plan.drop_mask(40, "w", "vm", 0)
        assert int(keep.sum()) == MIN_KEPT_SAMPLES
        # Short series are never dropped below their own length.
        short = plan.drop_mask(2, "w", "vm", 0)
        assert int(short.sum()) == 2

    def test_errors_survive_pickling(self):
        err = TransientRunError("w", "vm", 1, 2)
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.workload, clone.vm_name, clone.repetition, clone.attempt) == (
            "w", "vm", 1, 2,
        )
        perr = pickle.loads(pickle.dumps(ProbeFailedError("w", "vm", 3)))
        assert (perr.workload, perr.vm_name, perr.attempts) == ("w", "vm", 3)


class TestDisabledBitIdentity:
    """The fault layer, switched off, must be invisible."""

    def test_collector_identical(self):
        base = DataCollector(repetitions=REPS, seed=7)
        none = DataCollector(repetitions=REPS, seed=7, faults=FaultPlan.none())
        for spec in SPECS:
            for vm in VMS:
                a = base.collect(spec, vm)
                b = none.collect(spec, vm)
                np.testing.assert_array_equal(a.runtimes, b.runtimes)
                np.testing.assert_array_equal(a.timeseries, b.timeseries)
                assert base.runtime_only(spec, vm) == none.runtime_only(spec, vm)
        assert none.fault_events == []

    def test_campaign_identical(self):
        base = ProfilingCampaign(repetitions=REPS, seed=7, jobs=1)
        none = ProfilingCampaign(
            repetitions=REPS, seed=7, jobs=1, faults=FaultPlan.none()
        )
        np.testing.assert_array_equal(
            base.runtime_matrix(SPECS, VMS), none.runtime_matrix(SPECS, VMS)
        )
        assert none.faults is None
        assert none.fault_log == []
        assert none.counters.fault_count == 0


class TestEnabledDeterminism:
    def faulted_campaign(self, jobs: int) -> ProfilingCampaign:
        return ProfilingCampaign(
            repetitions=REPS, seed=7, jobs=jobs, faults=SURVIVABLE
        )

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_runtime_matrix_invariant_to_jobs(self, jobs):
        serial = self.faulted_campaign(1)
        parallel = self.faulted_campaign(jobs)
        np.testing.assert_array_equal(
            serial.runtime_matrix(SPECS, VMS), parallel.runtime_matrix(SPECS, VMS)
        )
        assert serial.fault_log == parallel.fault_log
        assert len(serial.fault_log) > 0
        for field in ("retries", "stragglers", "permanent_failures", "dropped_samples"):
            assert getattr(serial.counters, field) == getattr(parallel.counters, field)

    def test_collect_grid_invariant_to_jobs(self):
        ga = self.faulted_campaign(1).collect_grid(SPECS, VMS)
        gb = self.faulted_campaign(3).collect_grid(SPECS, VMS)
        assert ga.keys() == gb.keys()
        for key in ga:
            np.testing.assert_array_equal(ga[key].runtimes, gb[key].runtimes)
            np.testing.assert_array_equal(ga[key].timeseries, gb[key].timeseries)

    def test_faults_actually_change_results(self):
        clean = ProfilingCampaign(repetitions=REPS, seed=7, jobs=1)
        faulted = self.faulted_campaign(1)
        assert not np.array_equal(
            clean.runtime_matrix(SPECS, VMS), faulted.runtime_matrix(SPECS, VMS)
        )

    def test_fault_plans_use_distinct_cache_addresses(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        clean = ProfilingCampaign(repetitions=REPS, seed=7, jobs=1, cache=path)
        clean.runtime_matrix(SPECS, VMS)
        faulted = ProfilingCampaign(
            repetitions=REPS, seed=7, jobs=1, cache=path, faults=SURVIVABLE
        )
        faulted.runtime_matrix(SPECS, VMS)
        # The faulted campaign must not have consumed the clean entries...
        assert faulted.counters.cache_hits == 0
        # ...and a second clean campaign still hits all of them.
        warm = ProfilingCampaign(repetitions=REPS, seed=7, jobs=1, cache=path)
        warm.runtime_matrix(SPECS, VMS)
        assert warm.counters.cache_hits == len(SPECS) * len(VMS)

    def test_straggle_inflates_runtimes(self):
        spec, vm = SPECS[0], VMS[0]
        plan = FaultPlan(straggle_prob=1.0, straggle_scale=1.0, seed=2)
        clean = DataCollector(repetitions=REPS, seed=7).collect(spec, vm)
        slow = DataCollector(repetitions=REPS, seed=7, faults=plan).collect(spec, vm)
        assert np.all(slow.runtimes > clean.runtimes)
        events = DataCollector(repetitions=REPS, seed=7, faults=plan)
        events.collect(spec, vm)
        straggles = [e for e in events.drain_fault_events() if e.kind == "straggle"]
        assert len(straggles) == REPS
        assert all(e.detail > 1.0 for e in straggles)

    def test_drop_loses_samples(self):
        spec, vm = SPECS[0], VMS[0]
        plan = FaultPlan(drop_prob=0.5, seed=2)
        clean = DataCollector(repetitions=REPS, seed=7).collect(spec, vm)
        dropped = DataCollector(repetitions=REPS, seed=7, faults=plan).collect(spec, vm)
        assert dropped.timeseries.shape[0] < clean.timeseries.shape[0]
        assert dropped.timeseries.shape[0] >= MIN_KEPT_SAMPLES
        # Runtimes are untouched: only telemetry rows vanish.
        np.testing.assert_array_equal(dropped.runtimes, clean.runtimes)

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan(transient_prob=1.0, max_attempts=2, seed=0)
        dc = DataCollector(repetitions=REPS, seed=7, faults=plan)
        with pytest.raises(ProbeFailedError) as info:
            dc.collect(SPECS[0], VMS[0])
        assert info.value.attempts == 2
        assert [e.kind for e in info.value.events] == [
            "transient", "transient", "permanent",
        ]

    def test_transient_events_record_backoff(self):
        plan = FaultPlan(
            transient_prob=0.25, max_attempts=8, backoff_base_s=0.0, seed=5
        )
        dc = DataCollector(repetitions=REPS, seed=7, faults=plan)
        for spec in SPECS:
            for vm in VMS:
                dc.collect(spec, vm)
        transients = [e for e in dc.drain_fault_events() if e.kind == "transient"]
        assert transients, "plan should have caused at least one retry"
        assert all(e.backoff_s == plan.backoff_s(e.attempt) for e in transients)


class TestCampaignCounters:
    def test_record_fault_routing(self):
        counters = CampaignCounters()
        counters.record_fault("transient")
        counters.record_fault("transient")
        counters.record_fault("permanent")
        counters.record_fault("straggle", 1.8)
        counters.record_fault("drop", 5.0)
        assert counters.retries == 2
        assert counters.permanent_failures == 1
        assert counters.stragglers == 1
        assert counters.dropped_samples == 5
        assert counters.fault_count == 9
        assert "2 retried" in counters.summary()
        assert "5 samples dropped" in counters.summary()
        counters.reset()
        assert counters.fault_count == 0
        assert "retried" not in counters.summary()


FIT_KWARGS = dict(
    sources=training_set()[:5],
    vms=catalog()[:12],
    repetitions=REPS,
    k=3,
    correlation_probe_count=3,
    seed=7,
)


@pytest.fixture(scope="module")
def clean_selector():
    return VestaSelector(**FIT_KWARGS).fit()


@pytest.fixture(scope="module")
def target_spec():
    return training_set()[5]


def probe_killing_plan(clean_selector, spec, vms=None, **kwargs):
    """A plan that permanently fails (some of) ``spec``'s probe runs."""
    probes = clean_selector.online(spec).probe_vms
    names = tuple(vm.name for vm in probes) if vms is None else vms
    return (
        FaultPlan(
            transient_prob=1.0,
            max_attempts=2,
            seed=3,
            workloads=(spec.name,),
            vms=names,
            **kwargs,
        ),
        probes,
    )


class TestOnlineDegradation:
    def test_all_probes_fail_degrades_to_sandbox_only(
        self, clean_selector, target_spec
    ):
        plan, probes = probe_killing_plan(clean_selector, target_spec)
        sel = VestaSelector(faults=plan, **FIT_KWARGS).fit()
        session = sel.online(target_spec)
        rec = session.recommend()
        assert rec.degraded
        assert set(rec.failed_probes) == {vm.name for vm in probes}
        assert rec.reference_vm_count == 1  # sandbox only
        assert session.effective_match_threshold == 0.0
        assert len(rec.fault_events) > 0
        assert any(e.kind == "permanent" for e in rec.fault_events)
        assert rec.vm_name  # still recommends something

    def test_partial_failure_widens_threshold_proportionally(
        self, clean_selector, target_spec
    ):
        probes = clean_selector.online(target_spec).probe_vms
        plan, _ = probe_killing_plan(
            clean_selector, target_spec, vms=(probes[0].name,)
        )
        sel = VestaSelector(faults=plan, **FIT_KWARGS).fit()
        session = sel.online(target_spec)
        rec = session.recommend()
        assert rec.degraded
        assert rec.failed_probes == (probes[0].name,)
        surviving = (len(probes) - 1) / len(probes)
        assert session.effective_match_threshold == pytest.approx(
            sel.match_threshold * surviving
        )
        # Sandbox + the surviving probes remain observed.
        assert rec.reference_vm_count == len(probes)

    def test_degraded_offline_fit_unaffected(self, clean_selector, target_spec):
        plan, _ = probe_killing_plan(clean_selector, target_spec)
        sel = VestaSelector(faults=plan, **FIT_KWARGS).fit()
        # The plan is restricted to the target workload, so the offline
        # knowledge is bit-identical to the clean fit.
        np.testing.assert_array_equal(sel.perf, clean_selector.perf)
        np.testing.assert_array_equal(sel.U, clean_selector.U)

    def test_step_skips_permanently_failed_vms(self, clean_selector, target_spec):
        plan, probes = probe_killing_plan(clean_selector, target_spec)
        sel = VestaSelector(faults=plan, **FIT_KWARGS).fit()
        session = sel.online(target_spec)
        failed = set(session.failed_probes)
        name, runtime = session.step()
        assert name not in failed
        assert runtime > 0

    def test_clean_plan_session_not_degraded(self, clean_selector, target_spec):
        rec = clean_selector.online(target_spec).recommend()
        assert not rec.degraded
        assert rec.failed_probes == ()
        assert rec.fault_events == ()


class TestPersistenceRoundTrip:
    def test_roundtrip_recommendations_identical(
        self, clean_selector, target_spec, tmp_path
    ):
        path = save_selector(clean_selector, tmp_path / "knowledge.npz")
        loaded = load_selector(path)
        a = clean_selector.select(target_spec)
        b = loaded.select(target_spec)
        assert a == b
        assert not b.degraded

    def test_roundtrip_preserves_degradation_behaviour(
        self, clean_selector, target_spec, tmp_path
    ):
        plan, probes = probe_killing_plan(clean_selector, target_spec)
        path = save_selector(clean_selector, tmp_path / "knowledge.npz")
        loaded = load_selector(path, faults=plan)
        direct = VestaSelector(faults=plan, **FIT_KWARGS).fit()
        a = direct.select(target_spec)
        b = loaded.select(target_spec)
        assert b.degraded
        assert a.vm_name == b.vm_name
        assert a.predicted_runtime_s == b.predicted_runtime_s
        assert a.failed_probes == b.failed_probes
        assert set(b.failed_probes) == {vm.name for vm in probes}


class TestCLIFaults:
    def test_profile_with_fault_spec(self, capsys):
        from repro.cli import main

        code = main([
            "profile",
            "--workloads", SPECS[0].name,
            "--vms", VMS[0].name, VMS[1].name,
            "--reps", "3",
            "--jobs", "1",
            "--faults", "transient=0.25,straggle=0.3,attempts=8,seed=5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults on" in out

    def test_profile_faults_from_env(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULT_STRAGGLE", "0.3")
        monkeypatch.setenv("REPRO_FAULT_SEED", "5")
        code = main([
            "profile",
            "--workloads", SPECS[0].name,
            "--vms", VMS[0].name,
            "--reps", "3",
            "--jobs", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults on" in out

    def test_profile_without_faults(self, capsys):
        from repro.cli import main

        code = main([
            "profile",
            "--workloads", SPECS[0].name,
            "--vms", VMS[0].name,
            "--reps", "3",
            "--jobs", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults on" not in out
