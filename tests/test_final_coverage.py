"""Final coverage batch: CLI error paths, graph export, selector edges."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.graph import KnowledgeGraph
from repro.core.labels import LabelSpace
from repro.errors import ValidationError
from repro.workloads.catalog import get_workload


class TestCliParsing:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["deploy"])

    def test_unknown_experiment_id_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("catalog", "workloads", "simulate", "select",
                    "experiment", "latency"):
            assert cmd in text

    def test_simulate_unknown_workload_exits_one(self, capsys):
        # Library errors no longer escape main(): they exit 1 with a
        # one-line message (see TestCliErrorHandling in test_extensions).
        assert main(["simulate", "storm-wordcount", "m5.xlarge"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "storm-wordcount" in err


class TestGraphExport:
    def test_networkx_view_is_consistent(self):
        space = LabelSpace(("a",), softness=0)
        g = KnowledgeGraph(space, ("vm1",))
        g.add_source_workload("w", space.membership(np.array([0.5]), hard=True))
        nx_graph = g.graph
        workload_nodes = [n for n in nx_graph if n[0] == "workload"]
        label_nodes = [n for n in nx_graph if n[0] == "label"]
        vm_nodes = [n for n in nx_graph if n[0] == "vm"]
        assert len(workload_nodes) == 1
        assert len(label_nodes) == space.n_labels
        assert len(vm_nodes) == 1

    def test_empty_source_matrix_shape(self):
        space = LabelSpace(("a",))
        g = KnowledgeGraph(space, ("vm1",))
        assert g.workload_label_matrix().shape == (0, space.n_labels)
        assert g.similar_source_workloads(np.zeros(space.n_labels)) == []


class TestSelectorEdges:
    def test_online_before_fit_rejected(self, spark_lr):
        from repro.core.vesta import VestaSelector

        with pytest.raises(ValidationError):
            VestaSelector().online(spark_lr)

    def test_vm_index_unknown_rejected(self, fitted_vesta):
        with pytest.raises(ValidationError):
            fitted_vesta.vm_index("quantum.4xlarge")

    def test_recommendation_predictions_complete(self, fitted_vesta):
        rec = fitted_vesta.select(get_workload("spark-count"))
        assert len(rec.predictions) == len(fitted_vesta.vms)
        assert all(v > 0 for v in rec.predictions.values())

    def test_corr_probe_vms_spread(self, fitted_vesta):
        probes = fitted_vesta._corr_probe_vms()
        assert len(probes) == fitted_vesta.correlation_probe_count
        assert len({vm.family for vm in probes}) == len(probes)


class TestBaselineObjectiveConsistency:
    def test_paris_and_ernest_budget_never_pricier_rate(
        self, fitted_paris, shared_ernest, spark_lr
    ):
        from repro.cloud.vmtypes import get_vm_type

        for system in (fitted_paris, shared_ernest):
            t = get_vm_type(system.select(spark_lr, "time"))
            b = get_vm_type(system.select(spark_lr, "budget"))
            assert b.price_per_hour <= t.price_per_hour

    def test_ernest_invalid_objective(self, shared_ernest, spark_lr):
        with pytest.raises(ValidationError):
            shared_ernest.select(spark_lr, "carbon")

    def test_paris_invalid_objective(self, fitted_paris, spark_lr):
        with pytest.raises(ValidationError):
            fitted_paris.select(spark_lr, "carbon")
