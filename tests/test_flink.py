"""Tests for the Flink engine and fourth-framework transfer."""

import dataclasses

import pytest

from repro.errors import CatalogError
from repro.frameworks.flink import FlinkEngine
from repro.frameworks.registry import get_engine, simulate_run
from repro.workloads.catalog import get_workload


def flink_twin(name: str):
    base = get_workload(f"spark-{name}")
    return dataclasses.replace(base, name=f"flink-{name}", framework="flink")


class TestFlinkEngine:
    def test_registry_dispatch(self):
        assert isinstance(get_engine("flink"), FlinkEngine)
        with pytest.raises(CatalogError):
            get_engine("storm")

    def test_pipelined_pass_is_one_phase_per_iteration(self, small_cluster):
        spec = flink_twin("kmeans")
        phases = FlinkEngine().plan(spec, small_cluster)
        supersteps = [p for p in phases if "superstep" in p.name]
        assert len(supersteps) == spec.demand.iterations

    def test_no_shuffle_disk_traffic(self, small_cluster):
        spec = flink_twin("sort")  # full shuffle on Spark/Hadoop
        phases = FlinkEngine().plan(spec, small_cluster)
        supersteps = [p for p in phases if "superstep" in p.name]
        assert all(p.disk_write_gb == 0 for p in supersteps)
        assert all(p.net_gb > 0 for p in supersteps)

    def test_iteration_state_resident(self, small_cluster):
        spec = flink_twin("kmeans")
        phases = FlinkEngine().plan(spec, small_cluster)
        supersteps = [p for p in phases if "superstep" in p.name]
        assert supersteps[0].disk_read_gb > 0
        assert all(p.disk_read_gb == 0 for p in supersteps[1:])

    def test_faster_than_spark_on_iterative_jobs(self):
        spec = flink_twin("kmeans")
        spark = get_workload("spark-kmeans")
        f = simulate_run(spec, "m5.xlarge", with_timeseries=False).runtime_s
        s = simulate_run(spark, "m5.xlarge", with_timeseries=False).runtime_s
        assert f < s  # no stage barriers, no shuffle files

    def test_checkpoints_follow_sync_per_iter(self, small_cluster):
        spec = flink_twin("bfs")  # sync_per_iter = 3
        phases = FlinkEngine().plan(spec, small_cluster)
        checkpoints = [p for p in phases if "checkpoint" in p.name]
        assert len(checkpoints) == spec.demand.iterations * spec.demand.sync_per_iter

    def test_telemetry_produced(self):
        import numpy as np

        r = simulate_run(flink_twin("lr"), "c5.xlarge", rng=np.random.default_rng(0))
        assert r.timeseries.shape[1] == 20
        assert r.framework == "flink"


class TestFourthFrameworkTransfer:
    def test_flink_targets_well_formed(self):
        from repro.experiments.ext_flink import flink_targets

        targets = flink_targets()
        assert len(targets) == 6
        assert all(w.framework == "flink" for w in targets)
        # Twins share demand profiles with their Spark counterparts.
        assert targets[0].demand is get_workload("spark-lr").demand

    def test_vesta_selects_for_flink(self, fitted_vesta, ground_truth):
        spec = flink_twin("grep")
        rec = fitted_vesta.select(spec)
        # gt caches per workload-name; compute directly.
        from repro.telemetry.collector import DataCollector
        import numpy as np

        dc = DataCollector(repetitions=10, seed=7)
        rts = np.array([dc.runtime_only(spec, vm) for vm in ground_truth.vms])
        chosen = rts[[vm.name for vm in ground_truth.vms].index(rec.vm_name)]
        assert (chosen - rts.min()) / rts.min() < 0.5
