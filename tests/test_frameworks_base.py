"""Tests for the BSP scheduler core."""

import numpy as np
import pytest

from repro.cloud.cluster import Cluster
from repro.cloud.vmtypes import get_vm_type
from repro.errors import OutOfMemoryError, ValidationError
from repro.frameworks.base import (
    BSPScheduler,
    MAX_SPILL_RATIO,
    Phase,
    PhaseKind,
    TASK_MEMORY_FLOOR_GB,
    RunResult,
)
from repro.frameworks.batch import flatten_plans
from repro.frameworks.registry import get_engine, simulate_run


def make_phase(**overrides) -> Phase:
    defaults = dict(
        name="p",
        kind=PhaseKind.COMPUTE,
        tasks=16,
        cpu_secs_per_task=2.0,
        disk_read_gb=0.1,
        mem_gb_per_task=0.5,
    )
    defaults.update(overrides)
    return Phase(**defaults)


@pytest.fixture()
def scheduler():
    return BSPScheduler()


class TestPhaseValidation:
    def test_zero_tasks_rejected(self):
        with pytest.raises(ValidationError):
            make_phase(tasks=0)

    @pytest.mark.parametrize(
        "field", ["cpu_secs_per_task", "disk_read_gb", "net_gb", "mem_gb_per_task"]
    )
    def test_negative_demands_rejected(self, field):
        with pytest.raises(ValidationError):
            make_phase(**{field: -0.1})


class TestWaveScheduling:
    def test_single_wave_when_tasks_fit(self, scheduler, small_cluster):
        result = scheduler.simulate_phase(make_phase(tasks=16), small_cluster)
        assert result.waves == 1
        assert result.concurrency_per_node == 4

    def test_waves_grow_with_task_count(self, scheduler, small_cluster):
        r1 = scheduler.simulate_phase(make_phase(tasks=16), small_cluster)
        r3 = scheduler.simulate_phase(make_phase(tasks=48), small_cluster)
        assert r3.waves == 3 * r1.waves
        assert r3.duration_s == pytest.approx(3 * r1.duration_s)

    def test_duration_positive_even_for_empty_work(self, scheduler, small_cluster):
        result = scheduler.simulate_phase(
            make_phase(cpu_secs_per_task=0.0, disk_read_gb=0.0, mem_gb_per_task=0.0),
            small_cluster,
        )
        assert result.duration_s > 0

    def test_fixed_overhead_added_once(self, scheduler, small_cluster):
        base = scheduler.simulate_phase(make_phase(), small_cluster)
        with_oh = scheduler.simulate_phase(make_phase(fixed_overhead_s=10.0), small_cluster)
        assert with_oh.duration_s == pytest.approx(base.duration_s + 10.0)

    def test_faster_cpu_shortens_compute_phase(self, scheduler):
        slow = Cluster(vm=get_vm_type("m5a.xlarge"), nodes=4)
        fast = Cluster(vm=get_vm_type("z1d.xlarge"), nodes=4)
        phase = make_phase(cpu_secs_per_task=50.0, disk_read_gb=0.0)
        assert (
            BSPScheduler().simulate_phase(phase, fast).duration_s
            < BSPScheduler().simulate_phase(phase, slow).duration_s
        )

    def test_more_disk_shortens_io_phase(self, scheduler):
        ebs = Cluster(vm=get_vm_type("m5.xlarge"), nodes=4)
        nvme = Cluster(vm=get_vm_type("i3.xlarge"), nodes=4)
        phase = make_phase(cpu_secs_per_task=0.1, disk_read_gb=2.0)
        assert (
            scheduler.simulate_phase(phase, nvme).duration_s
            < scheduler.simulate_phase(phase, ebs).duration_s
        )


class TestMemoryBehaviour:
    def test_memory_floor_applies_to_worker_tasks(self, scheduler, small_cluster):
        result = scheduler.simulate_phase(make_phase(mem_gb_per_task=0.01), small_cluster)
        # 15 GB usable / 0.75 floor = 20 >= 4 vcpus, so still vcpu-bound.
        assert result.concurrency_per_node == 4

    def test_memory_floor_skipped_for_sync(self, scheduler):
        tiny = Cluster(vm=get_vm_type("c4n.small"), nodes=4)
        sync = make_phase(kind=PhaseKind.SYNCHRONIZATION, mem_gb_per_task=0.0, tasks=4)
        result = scheduler.simulate_phase(sync, tiny)
        assert not result.spilled

    def test_spill_engages_for_oversized_tasks(self, scheduler, small_cluster):
        result = scheduler.simulate_phase(make_phase(mem_gb_per_task=30.0), small_cluster)
        assert result.spilled
        assert result.concurrency_per_node == 1
        assert result.spilled_gb_per_task == pytest.approx(30.0 - 15.0)

    def test_spilling_slows_the_phase(self, scheduler, small_cluster):
        fit = scheduler.simulate_phase(make_phase(mem_gb_per_task=1.0), small_cluster)
        spill = scheduler.simulate_phase(make_phase(mem_gb_per_task=30.0), small_cluster)
        assert spill.duration_s > fit.duration_s

    def test_oom_beyond_spill_limit(self, scheduler, small_cluster):
        with pytest.raises(OutOfMemoryError):
            scheduler.simulate_phase(make_phase(mem_gb_per_task=5000.0), small_cluster)

    def test_gc_pressure_inflates_cpu_time(self, scheduler, small_cluster):
        # 15 GB usable; 4 x 3.6 GB = 96 % utilization -> GC penalty.
        relaxed = scheduler.simulate_phase(
            make_phase(cpu_secs_per_task=20.0, disk_read_gb=0.0, mem_gb_per_task=1.0),
            small_cluster,
        )
        pressured = scheduler.simulate_phase(
            make_phase(cpu_secs_per_task=20.0, disk_read_gb=0.0, mem_gb_per_task=3.6),
            small_cluster,
        )
        assert pressured.duration_s > relaxed.duration_s * 1.1


class TestUtilizations:
    def test_fractions_bounded(self, scheduler, small_cluster):
        r = scheduler.simulate_phase(make_phase(net_gb=0.5, disk_write_gb=0.5), small_cluster)
        for v in (r.cpu_busy_frac, r.io_wait_frac, r.mem_used_frac, r.net_overload_frac):
            assert 0.0 <= v <= 1.0

    def test_byte_rates_nonnegative(self, scheduler, small_cluster):
        r = scheduler.simulate_phase(make_phase(disk_write_gb=1.0, net_gb=1.0), small_cluster)
        assert r.disk_read_mbps_node >= 0
        assert r.disk_write_mbps_node > 0
        assert r.net_mbps_node > 0

    def test_cpu_heavy_phase_is_cpu_bound(self, scheduler, small_cluster):
        r = scheduler.simulate_phase(
            make_phase(cpu_secs_per_task=100.0, disk_read_gb=0.001), small_cluster
        )
        assert r.cpu_busy_frac > 0.8
        assert r.io_wait_frac < 0.1

    def test_bandwidth_shared_by_resident_tasks_only(self, scheduler, small_cluster):
        # 4 tasks on 4 nodes = 1 per node: full per-node bandwidth each.
        sparse = scheduler.simulate_phase(
            make_phase(tasks=4, cpu_secs_per_task=0.0, disk_read_gb=2.0), small_cluster
        )
        dense = scheduler.simulate_phase(
            make_phase(tasks=16, cpu_secs_per_task=0.0, disk_read_gb=2.0), small_cluster
        )
        # Dense packs 4 tasks per node -> 1/4 bandwidth each -> same wall time
        # per wave is 4x sparse's per-task time but one wave either way.
        assert dense.duration_s == pytest.approx(4 * sparse.duration_s, rel=0.15)

    def test_mem_demand_tracks_workload_not_floor(self, scheduler, small_cluster):
        lo = scheduler.simulate_phase(make_phase(mem_gb_per_task=0.01), small_cluster)
        hi = scheduler.simulate_phase(make_phase(mem_gb_per_task=3.0), small_cluster)
        assert hi.mem_demand_frac > lo.mem_demand_frac


class TestEngineRun:
    def test_run_result_fields(self, spark_lr, rng):
        r = simulate_run(spark_lr, "m5.xlarge", rng=rng)
        assert isinstance(r, RunResult)
        assert r.workload == "spark-lr"
        assert r.vm_name == "m5.xlarge"
        assert r.runtime_s > 0
        assert r.budget_usd > 0
        assert r.timeseries is not None and r.timeseries.shape[1] == 20

    def test_noise_multiplier_scales_runtime(self, spark_lr):
        base = simulate_run(spark_lr, "m5.xlarge", with_timeseries=False)
        noisy = simulate_run(
            spark_lr, "m5.xlarge", noise_multiplier=1.5, with_timeseries=False
        )
        assert noisy.runtime_s == pytest.approx(1.5 * base.runtime_s)
        assert noisy.base_runtime_s == pytest.approx(base.runtime_s)

    def test_timeseries_skipped_when_disabled(self, spark_lr):
        r = simulate_run(spark_lr, "m5.xlarge", with_timeseries=False)
        assert r.timeseries is None

    def test_engine_rejects_wrong_framework(self, spark_lr, small_cluster):
        with pytest.raises(ValidationError):
            get_engine("hadoop").run(spark_lr, small_cluster)

    def test_invalid_noise_rejected(self, spark_lr):
        with pytest.raises(ValidationError):
            simulate_run(spark_lr, "m5.xlarge", noise_multiplier=0.0)

    def test_deterministic_without_rng(self, spark_lr):
        a = simulate_run(spark_lr, "m5.xlarge")
        b = simulate_run(spark_lr, "m5.xlarge")
        assert a.runtime_s == b.runtime_s
        np.testing.assert_array_equal(a.timeseries, b.timeseries)


class _StubVM:
    """Minimal VM surface for pathological-cluster tests."""

    def __init__(self, vcpus, cpu_speed=1.0, disk_mbps=100.0):
        self.name = "stub"
        self.vcpus = vcpus
        self.cpu_speed = cpu_speed
        self.disk_mbps = disk_mbps


class _StubCluster:
    """Duck-typed cluster that can present ``usable <= 0`` node memory.

    Catalog clusters cap the OS reserve at a quarter of node memory, so a
    real :class:`Cluster` can never reach this branch — but the scheduler
    still guards it, and the guard deserves a test.  The concurrency
    formula mirrors :meth:`Cluster.concurrent_tasks_per_node` so the
    scalar and batched paths see consistent inputs.
    """

    def __init__(self, usable, vcpus=4, nodes=2):
        self.vm = _StubVM(vcpus)
        self.nodes = nodes
        self.usable_mem_per_node_gb = usable
        self.net_mbps_per_node = 1000.0
        self.total_vcpus = vcpus * nodes
        self.compute_rate = vcpus * nodes * self.vm.cpu_speed

    def concurrent_tasks_per_node(self, task_mem_gb):
        if task_mem_gb < 1e-9:
            return self.vm.vcpus
        return min(self.vm.vcpus, int(self.usable_mem_per_node_gb // task_mem_gb))


def assert_batch_matches_scalar(phases, cluster):
    """Price ``phases`` both ways and require bitwise-equal columns."""
    sched = BSPScheduler()
    priced = sched.simulate_phases(flatten_plans([list(phases)], [cluster]))
    for j, phase in enumerate(phases):
        scalar = sched.simulate_phase(phase, cluster)
        assert not priced.infeasible[j]
        assert priced.duration_s[j] == scalar.duration_s
        assert priced.concurrency[j] == scalar.concurrency_per_node
        assert priced.waves[j] == scalar.waves
        assert priced.spilled_gb[j] == scalar.spilled_gb_per_task
        assert priced.cpu_busy[j] == scalar.cpu_busy_frac
        assert priced.io_wait[j] == scalar.io_wait_frac
        assert priced.mem_used[j] == scalar.mem_used_frac
        assert priced.mem_demand[j] == scalar.mem_demand_frac
        assert priced.disk_read_rate[j] == scalar.disk_read_mbps_node
        assert priced.disk_write_rate[j] == scalar.disk_write_mbps_node
        assert priced.net_rate[j] == scalar.net_mbps_node
        assert priced.net_overload[j] == scalar.net_overload_frac


class TestPhaseEdgeCases:
    """Degenerate corners of the pricing model, scalar and batched."""

    def test_zero_disk_phase_has_no_io_time(self, scheduler, small_cluster):
        phase = make_phase(disk_read_gb=0.0, disk_write_gb=0.0, net_gb=0.5)
        r = scheduler.simulate_phase(phase, small_cluster)
        assert r.disk_read_mbps_node == 0.0
        assert r.disk_write_mbps_node == 0.0
        assert r.net_mbps_node > 0.0
        assert_batch_matches_scalar([phase], small_cluster)

    def test_zero_net_phase_has_no_net_rates(self, scheduler, small_cluster):
        phase = make_phase(net_gb=0.0, disk_read_gb=0.3)
        r = scheduler.simulate_phase(phase, small_cluster)
        assert r.net_mbps_node == 0.0
        assert r.net_overload_frac == 0.0
        assert_batch_matches_scalar([phase], small_cluster)

    def test_pure_cpu_phase_duration_is_closed_form(self, scheduler, small_cluster):
        phase = make_phase(
            tasks=16,
            cpu_secs_per_task=8.0,
            disk_read_gb=0.0,
            mem_gb_per_task=1.0,
            fixed_overhead_s=2.0,
        )
        r = scheduler.simulate_phase(phase, small_cluster)
        # 16 tasks over 4x4 slots = 1 wave; no IO => duration is the fixed
        # overhead plus one wave of pure (scaled) CPU time.
        assert r.waves == 1
        assert r.io_wait_frac == 0.0
        expected = 2.0 + 8.0 / small_cluster.vm.cpu_speed
        assert r.duration_s == pytest.approx(expected)
        assert_batch_matches_scalar([phase], small_cluster)

    def test_spill_exactly_at_max_ratio_is_feasible(self, scheduler, small_cluster):
        usable = small_cluster.usable_mem_per_node_gb
        at_limit = make_phase(mem_gb_per_task=MAX_SPILL_RATIO * usable)
        r = scheduler.simulate_phase(at_limit, small_cluster)
        assert r.concurrency_per_node == 1
        assert r.spilled_gb_per_task == MAX_SPILL_RATIO * usable - usable
        assert_batch_matches_scalar([at_limit], small_cluster)

    def test_spill_just_above_max_ratio_raises(self, scheduler, small_cluster):
        usable = small_cluster.usable_mem_per_node_gb
        over = make_phase(
            mem_gb_per_task=float(np.nextafter(MAX_SPILL_RATIO * usable, np.inf))
        )
        with pytest.raises(OutOfMemoryError):
            scheduler.simulate_phase(over, small_cluster)
        priced = BSPScheduler().simulate_phases(
            flatten_plans([[over]], [small_cluster])
        )
        assert bool(priced.infeasible[0])

    def test_single_slot_cluster_serializes_every_task(self, scheduler):
        one_node = Cluster(vm=get_vm_type("m5.xlarge"), nodes=1)
        usable = one_node.usable_mem_per_node_gb
        # One task's working set claims (almost) the whole node: a single
        # slot, so the wave count degenerates to the task count.
        phase = make_phase(tasks=7, mem_gb_per_task=usable * 0.9)
        r = scheduler.simulate_phase(phase, one_node)
        assert r.concurrency_per_node == 1
        assert r.waves == 7
        assert_batch_matches_scalar([phase], one_node)

    def test_nonpositive_usable_memory_raises_for_worker_tasks(self, scheduler):
        broke = _StubCluster(usable=0.0)
        with pytest.raises(OutOfMemoryError):
            scheduler.simulate_phase(make_phase(), broke)
        priced = BSPScheduler().simulate_phases(
            flatten_plans([[make_phase()]], [broke])
        )
        assert bool(priced.infeasible[0])

    def test_nonpositive_usable_memory_allows_sync_phases(self, scheduler):
        broke = _StubCluster(usable=0.0)
        sync = make_phase(
            kind=PhaseKind.SYNCHRONIZATION, mem_gb_per_task=0.0, tasks=2
        )
        r = scheduler.simulate_phase(sync, broke)
        # No memory at all: the model pins both memory fractions to 1.0.
        assert r.mem_used_frac == 1.0
        assert r.mem_demand_frac == 1.0
        assert not r.spilled
        assert_batch_matches_scalar([sync], broke)


class TestSkew:
    def test_skew_stretches_duration(self, scheduler, small_cluster):
        base = scheduler.simulate_phase(make_phase(), small_cluster)
        skewed = scheduler.simulate_phase(make_phase(skew=1.0), small_cluster)
        assert skewed.duration_s > base.duration_s

    def test_skew_penalty_is_one_straggler_wave(self, scheduler, small_cluster):
        # duration = fixed + waves*t + skew*t, so the delta equals the
        # per-task time exactly for skew = 1.
        base = scheduler.simulate_phase(make_phase(tasks=16), small_cluster)
        skewed = scheduler.simulate_phase(make_phase(tasks=16, skew=1.0), small_cluster)
        per_task = base.duration_s / base.waves
        assert skewed.duration_s - base.duration_s == pytest.approx(per_task)

    def test_negative_skew_rejected(self):
        with pytest.raises(ValidationError):
            make_phase(skew=-0.5)

    def test_skewed_generator_workloads_slower(self):
        from repro.workloads.generators import WorkloadGenerator
        import dataclasses

        gen = WorkloadGenerator(seed=9)
        w = gen.sample(archetype="shuffle-heavy", framework="spark")
        assert w.demand.skew > 0
        uniform = dataclasses.replace(w, demand=dataclasses.replace(w.demand, skew=0.0))
        slow = simulate_run(w, "m5.xlarge", with_timeseries=False).runtime_s
        fast = simulate_run(uniform, "m5.xlarge", with_timeseries=False).runtime_s
        assert slow > fast
