"""Cross-module integration tests: the paper's end-to-end claims.

These tie the whole pipeline together — simulator → telemetry →
correlation knowledge → CMF transfer → selection — and assert the
qualitative shapes the paper reports, not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments.common import mape_vs_best
from repro.telemetry.collector import DataCollector
from repro.telemetry.store import MetricsStore
from repro.workloads.catalog import get_workload, target_set

pytestmark = pytest.mark.experiments


class TestHeadlineClaims:
    def test_vesta_better_than_transferred_paris(
        self, fitted_vesta, fitted_paris, ground_truth
    ):
        """Abstract claim 3: 'improve performance up to 51 %' vs PARIS."""
        vesta_err, paris_err = [], []
        for spec in target_set():
            session = fitted_vesta.online(spec)
            vesta_err.append(mape_vs_best(spec, session.predict_runtimes()))
            paris_err.append(mape_vs_best(spec, fitted_paris.predict_runtimes(spec)))
        assert np.mean(vesta_err) < np.mean(paris_err)
        improvement = (np.mean(paris_err) - np.mean(vesta_err)) / np.mean(paris_err)
        assert improvement > 0.3

    def test_overhead_reduction_vs_paris_scratch(self, fitted_vesta):
        """Abstract claim: 'reducing 85 % training overhead'."""
        session = fitted_vesta.online(get_workload("spark-bayes"))
        for _ in range(11):
            session.step()
        assert session.reference_vm_count <= 15
        assert 1 - session.reference_vm_count / 100 >= 0.85

    def test_transfer_beats_no_knowledge(self, fitted_vesta, ground_truth):
        """With the same 4 runs, Vesta's pick beats the naive best-of-probes."""
        wins = 0
        for spec in target_set()[:6]:
            session = fitted_vesta.online(spec)
            rec = session.recommend()
            picked = ground_truth.value_of(spec, rec.vm_name)
            naive = min(
                ground_truth.value_of(spec, n) for n in session.observations
            )
            wins += picked <= naive
        assert wins >= 4

    def test_svdpp_error_within_its_variance(self, fitted_vesta, ground_truth):
        """Section 5.3: svd++ runs with ~40 % variance; its prediction error
        stays within that variance band."""
        spec = get_workload("spark-svd++")
        profile = DataCollector(repetitions=10, seed=7).collect(spec, "m5.xlarge")
        session = fitted_vesta.online(spec)
        err = mape_vs_best(spec, session.predict_runtimes()) / 100.0
        assert profile.runtime_cv > 0.2
        assert err < profile.runtime_cv + 0.25


class TestOfflinePipelinePersistence:
    def test_profiles_roundtrip_through_store(self, tmp_path):
        """Offline profiling can be archived and reloaded (MySQL stand-in)."""
        collector = DataCollector(repetitions=3, seed=7)
        path = str(tmp_path / "campaign.sqlite")
        names = ("hadoop-terasort", "hive-join", "spark-lr")
        with MetricsStore(path) as store:
            with store.bulk():
                for name in names:
                    store.put(collector.collect(get_workload(name), "m5.xlarge"))
        with MetricsStore(path) as store:
            assert store.workloads() == sorted(names)
            spec = get_workload("spark-lr")
            back = store.get("spark-lr", "m5.xlarge", nodes=spec.nodes)
            fresh = collector.collect(spec, "m5.xlarge")
            np.testing.assert_array_equal(back.runtimes, fresh.runtimes)


class TestObjectivesDiffer:
    def test_time_and_budget_recommendations_differ(self, fitted_vesta):
        """Fast VMs aren't cheap VMs: the two objectives pick differently."""
        differ = 0
        for name in ("spark-lr", "spark-sort", "spark-kmeans"):
            session = fitted_vesta.online(get_workload(name))
            if session.recommend("time").vm_name != session.recommend("budget").vm_name:
                differ += 1
        assert differ >= 2

    def test_budget_pick_is_cheaper_rate(self, fitted_vesta):
        from repro.cloud.vmtypes import get_vm_type

        session = fitted_vesta.online(get_workload("spark-page-rank"))
        t = get_vm_type(session.recommend("time").vm_name)
        b = get_vm_type(session.recommend("budget").vm_name)
        assert b.price_per_hour <= t.price_per_hour
