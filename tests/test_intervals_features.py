"""Tests for interval labels and feature selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.feature_selection import exhaustive_search, select_by_importance
from repro.analysis.intervals import (
    INTERVAL_WIDTH,
    interval_bounds,
    interval_of,
    label_matrix,
    labels_for_vector,
    num_intervals,
)
from repro.errors import ValidationError


class TestIntervals:
    def test_paper_width_gives_40_intervals(self):
        assert INTERVAL_WIDTH == 0.05
        assert num_intervals() == 40

    def test_paper_example_intervals(self):
        # "[0.1, 0.15]" -> index (0.1 + 1)/0.05 = 22.
        assert interval_of(0.12) == 22
        lo, hi = interval_bounds(22)
        assert lo == pytest.approx(0.10)
        assert hi == pytest.approx(0.15)

    def test_extremes_map_inside(self):
        assert interval_of(-1.0) == 0
        assert interval_of(1.0) == num_intervals() - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            interval_of(1.2)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValidationError):
            num_intervals(0.0)

    def test_bounds_roundtrip(self):
        for idx in range(num_intervals()):
            lo, hi = interval_bounds(idx)
            mid = (lo + hi) / 2
            assert interval_of(mid) == idx

    @given(st.floats(-1.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_value_within_its_interval(self, value):
        idx = interval_of(value)
        lo, hi = interval_bounds(idx)
        assert lo - 1e-9 <= value <= hi + 1e-9

    @given(st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, a, b):
        if a <= b:
            assert interval_of(a) <= interval_of(b)


class TestLabelMatrix:
    def test_flat_ids_block_structure(self):
        ids = labels_for_vector(np.array([-1.0, 1.0]))
        n = num_intervals()
        assert ids[0] == 0
        assert ids[1] == 2 * n - 1

    def test_one_hot_per_feature(self):
        vectors = np.array([[0.12, -0.4], [0.9, 0.9]])
        m = label_matrix(vectors)
        assert m.shape == (2, 2 * num_intervals())
        assert np.all(m.sum(axis=1) == 2)  # one label per feature
        assert set(np.unique(m)) == {0.0, 1.0}

    def test_equation3_semantics(self):
        # G[i, j] == 1 iff workload i conforms to label j.
        m = label_matrix(np.array([[0.12]]))
        assert m[0, interval_of(0.12)] == 1.0

    def test_non_2d_rejected(self):
        with pytest.raises(ValidationError):
            label_matrix(np.zeros(5))


class TestImportanceSelection:
    def test_keeps_strongest_features(self, rng):
        X = np.column_stack(
            [
                5.0 * rng.normal(size=100),
                0.01 * rng.normal(size=100),
                3.0 * rng.normal(size=100),
            ]
        )
        kept, imp = select_by_importance(X, keep_mass=0.9)
        assert 0 in kept and 2 in kept
        assert imp.shape == (3,)

    def test_min_features_respected(self, rng):
        X = np.column_stack([rng.normal(size=50), 1e-6 * rng.normal(size=50)])
        kept, _ = select_by_importance(X, keep_mass=0.1, min_features=2)
        assert len(kept) == 2

    def test_kept_sorted_ascending(self, rng):
        X = rng.normal(size=(40, 6))
        kept, _ = select_by_importance(X, keep_mass=0.7)
        assert list(kept) == sorted(kept)

    def test_full_mass_keeps_everything(self, rng):
        X = rng.normal(size=(40, 5))
        kept, _ = select_by_importance(X, keep_mass=1.0)
        assert len(kept) == 5

    def test_invalid_mass_rejected(self, rng):
        with pytest.raises(ValidationError):
            select_by_importance(rng.normal(size=(10, 3)), keep_mass=0.0)


class TestExhaustiveSearch:
    def test_finds_global_optimum(self):
        target = (1, 3)
        best, score = exhaustive_search(
            5, lambda s: 10.0 - abs(len(s) - 2) - (0 if s == target else 1)
        )
        assert best == target
        assert score == 10.0

    def test_max_size_bounds_subsets(self):
        seen = []
        exhaustive_search(4, lambda s: seen.append(s) or 0.0, max_size=2)
        assert max(len(s) for s in seen) == 2

    def test_full_space_size(self):
        seen = []
        exhaustive_search(4, lambda s: seen.append(s) or 0.0)
        assert len(seen) == 2**4 - 1

    def test_tie_break_deterministic(self):
        best, _ = exhaustive_search(3, lambda s: 1.0)
        assert best == (0,)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            exhaustive_search(0, lambda s: 0.0)
        with pytest.raises(ValidationError):
            exhaustive_search(3, lambda s: 0.0, max_size=0)
