"""Tests for the serve→learn loop (``service/learning.py``).

Pins the lifecycle's serving contract: with learning off the service is
byte-identical to the learning-free build (no journal hook, no promotion
fingerprints); with learning on, served sessions are journalled
fleet-wide, the background promoter grows knowledge only through the
measured-transfer gate, and a promotion hot-reloads every shard without
ever mixing knowledge fingerprints within a response.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cloud.vmtypes import catalog
from repro.core.persistence import clone_knowledge
from repro.core.pipeline import PromotedSource
from repro.core.vesta import VestaSelector
from repro.errors import ValidationError
from repro.service import SelectionService, SelectorRegistry
from repro.service.learning import LearningLoop, SessionJournal, learning_enabled
from repro.telemetry.store import MetricsStore
from repro.workloads.catalog import get_workload, target_set, training_set

SEED = 7
VMS = catalog()[:10]
SOURCES = training_set()[:5]
TARGETS = tuple(w.name for w in target_set()[:6])


def _fresh_selector(**kwargs) -> VestaSelector:
    return VestaSelector(vms=VMS, sources=SOURCES, seed=SEED, **kwargs).fit()


@pytest.fixture(scope="module")
def selector():
    return _fresh_selector()


@pytest.fixture(scope="module")
def reference():
    """Sequential ground truth from a twin selector (the PR 9 path)."""
    ref = _fresh_selector()
    return {name: ref.select(get_workload(name)) for name in TARGETS}


def _registry(selector) -> SelectorRegistry:
    reg = SelectorRegistry()
    reg.register("default", selector)
    return reg


def _assert_identical(payload_rec, expected) -> None:
    assert payload_rec.vm_name == expected.vm_name
    assert payload_rec.predicted_runtime_s == expected.predicted_runtime_s
    assert payload_rec.predicted_budget_usd == expected.predicted_budget_usd
    assert payload_rec.predictions == expected.predictions


class TestLearningOffByteIdentity:
    def test_default_service_carries_no_learning_path(self, selector, reference):
        with SelectionService(_registry(selector)) as service:
            assert service._journal is None
            assert service._learning is None
            assert service.stats()["learning"] == {"enabled": False}
            for name in TARGETS:
                _assert_identical(
                    service.select(name).recommendation, reference[name]
                )

    def test_learn_flag_off_is_byte_identical(self, selector, reference):
        with SelectionService(_registry(selector), learn=False) as service:
            for name in TARGETS:
                _assert_identical(
                    service.select(name).recommendation, reference[name]
                )

    def test_env_kill_switch_vetoes_learn_flag(
        self, selector, reference, monkeypatch
    ):
        monkeypatch.setenv("REPRO_LEARN", "0")
        assert not learning_enabled()
        with SelectionService(_registry(selector), learn=True) as service:
            assert not service.learn
            assert service._journal is None
            assert service.stats()["learning"] == {"enabled": False}
            for name in TARGETS:
                _assert_identical(
                    service.select(name).recommendation, reference[name]
                )

    def test_no_promotion_fingerprint_without_promotions(self, selector):
        # The gated fingerprint key only exists once something promoted:
        # learning-off pipelines hash exactly the PR 9 stage set.
        assert "promotions" not in selector.pipeline.fingerprints()

    def test_learn_requires_inline_serving(self, selector):
        with pytest.raises(ValidationError):
            SelectionService(_registry(selector), learn=True, pool=True)


class TestSessionJournal:
    def test_served_sessions_land_in_store(self, selector):
        with MetricsStore(":memory:") as store, SelectionService(
            _registry(selector), learn=True, learn_store=store,
            learn_interval_s=3600.0,
        ) as service:
            for name in TARGETS:
                assert service.select(name).recommendation.vm_name
            stats = service.stats()["learning"]
            assert stats["enabled"] is True
            assert stats["journal"]["journaled"] == len(TARGETS)
            assert stats["journal"]["dropped"] == 0
            assert store.session_count() == len(TARGETS)
            fingerprint = selector.knowledge_fingerprint()
            for record in store.sessions():
                assert record.workload in TARGETS
                assert record.fingerprint == fingerprint
                assert (record.observed > 0).all()

    def test_all_shards_share_one_journal(self, selector):
        with MetricsStore(":memory:") as store, SelectionService(
            _registry(selector), shards=2, learn=True, learn_store=store,
            learn_interval_s=3600.0,
        ) as service:
            responses = [service.select(name) for name in TARGETS]
            assert {r.shard for r in responses} == {0, 1}
            assert store.session_count() == len(TARGETS)

    def test_journal_failure_never_fails_the_response(self, selector):
        class BrokenStore:
            def log_session(self, record, *, limit=None):
                raise RuntimeError("disk full")

            def session_count(self):
                return 0

            def close(self):
                pass

        journal = SessionJournal(BrokenStore())
        with SelectionService(
            _registry(selector), learn=True, learn_store=journal.store,
            learn_interval_s=3600.0,
        ) as service:
            response = service.select(TARGETS[0])
            assert response.recommendation.vm_name
            assert service.stats()["learning"]["journal"]["dropped"] == 1

    def test_retention_limit_bounds_the_journal(self, selector):
        with MetricsStore(":memory:") as store, SelectionService(
            _registry(selector), learn=True, learn_store=store,
            learn_journal_limit=3, learn_interval_s=3600.0,
        ) as service:
            for name in TARGETS:
                service.select(name)
            assert store.session_count() == 3
            kept = [r.workload for r in store.sessions()]
            assert kept == list(TARGETS[-3:])  # oldest evicted first


class TestLearningLoop:
    def test_promote_once_grows_and_hot_reloads(self, fitted_vesta):
        """End to end on the full-catalog fixture (the gate needs real
        spark targets to measure a positive transfer)."""
        registry = SelectorRegistry()
        registry.register("default", clone_knowledge(fitted_vesta))
        before = registry.get("default")
        with MetricsStore(":memory:") as store:
            journal = SessionJournal(store)
            for spec in target_set():
                session = fitted_vesta.online(spec)
                session.recommend("time")
                journal(before, session, "time")
            loop = LearningLoop(registry, journal, start=False)
            report = loop.promote_once()
            assert report is not None and report.promoted
            after = registry.get("default")
            assert after.generation == before.generation + 1
            assert after.fingerprint != before.fingerprint
            assert after.selector.knowledge_fingerprint() == after.fingerprint
            # Promotion lineage points at the knowledge that served it.
            for promo in after.selector.promotions:
                assert promo.lineage == before.fingerprint
            stats = loop.stats()
            assert stats["promoted"] == len(report.promoted)
            assert stats["reload_generations"] == 1
            assert stats["candidates_seen"] == report.candidates
            assert stats["gated_out"] == report.gated_out
            # The served selector object was never mutated in place.
            assert before.selector.knowledge_fingerprint() == before.fingerprint

    def test_promote_once_skips_when_journal_is_quiet(self, fitted_vesta):
        registry = SelectorRegistry()
        registry.register("default", clone_knowledge(fitted_vesta))
        handle = registry.get("default")
        with MetricsStore(":memory:") as store:
            journal = SessionJournal(store)
            loop = LearningLoop(registry, journal, start=False)
            assert loop.promote_once() is None  # empty journal
            session = fitted_vesta.online(target_set()[0])
            journal(handle, session, "time")
            loop.promote_once()
            # No new sessions since: the cycle is skipped entirely.
            assert loop.promote_once() is None
            assert registry.get("default").generation == handle.generation

    def test_background_thread_runs_cycles(self, selector):
        registry = _registry(selector)
        handle = registry.get("default")
        with MetricsStore(":memory:") as store:
            journal = SessionJournal(store)
            session = selector.online(get_workload(TARGETS[0]))
            journal(handle, session, "time")
            with LearningLoop(
                registry, journal, interval_s=0.05, start=True
            ) as loop:
                deadline = time.monotonic() + 10.0
                while loop.stats()["cycles"] == 0:
                    assert time.monotonic() < deadline, "no learn cycle ran"
                    time.sleep(0.01)
            assert loop.stats()["errors"] == 0


class TestHotReloadNeverMixesFingerprints:
    def test_promotion_reload_is_atomic_across_shards(self, selector):
        """The promoter's swap (``registry.register``) must propagate to
        every shard replica, and each response must be served wholly by
        one knowledge version — exactly what its fingerprint claims."""
        promoted = clone_knowledge(selector)
        promoted.promote(
            [
                PromotedSource(
                    name="synthetic-target",
                    label_row=promoted.U.mean(axis=0),
                    perf_row=np.full(len(VMS), promoted.perf.mean()),
                    lineage=selector.knowledge_fingerprint(),
                )
            ]
        )
        # Sequential references for both knowledge versions.
        ref_old = {n: selector.select(get_workload(n)) for n in TARGETS}
        twin = clone_knowledge(promoted)
        ref_new = {n: twin.select(get_workload(n)) for n in TARGETS}
        fp_old = selector.knowledge_fingerprint()
        fp_new = promoted.knowledge_fingerprint()
        assert fp_old != fp_new

        registry = _registry(selector)
        with SelectionService(
            registry, shards=2, rec_cache_size=0
        ) as service:
            for name in TARGETS:
                response = service.select(name)
                assert response.fingerprint == fp_old
            # The promoter's atomic swap, mid-serving.
            registry.register("default", promoted)
            responses = [service.select(name) for name in TARGETS]
            assert {r.shard for r in responses} == {0, 1}
            for name, response in zip(TARGETS, responses):
                # Every response is served wholly by the new version...
                assert response.fingerprint == fp_new
                # ...and answers exactly what that version answers.
                _assert_identical(response.recommendation, ref_new[name])
                assert response.recommendation.predictions != (
                    ref_old[name].predictions
                ) or ref_old[name].predictions == ref_new[name].predictions
