"""Cross-checks and small-surface coverage: errors, resources, numerics."""

import numpy as np
import pytest

from repro.analysis.correlation import correlation_matrix
from repro.cloud.cluster import Cluster
from repro.cloud.vmtypes import get_vm_type
from repro.errors import (
    CatalogError,
    ConvergenceError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.frameworks.base import BSPScheduler, Phase, PhaseKind
from repro.frameworks.registry import get_engine
from repro.frameworks.resources import phase_metric_levels
from repro.telemetry.metrics import METRIC_INDEX, NUM_METRICS


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (CatalogError, ValidationError, SimulationError,
                    OutOfMemoryError, ConvergenceError):
            assert issubclass(exc, ReproError)

    def test_dual_inheritance_for_ergonomics(self):
        # Callers can catch the stdlib flavour too.
        assert issubclass(CatalogError, KeyError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(OutOfMemoryError, SimulationError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            get_vm_type("nope.large")


class TestCorrelationMatrixVsNumpy:
    def test_matches_corrcoef_on_nondegenerate_data(self, rng):
        series = np.abs(rng.normal(size=(50, NUM_METRICS))) + 0.1
        ours = correlation_matrix(series)
        theirs = np.corrcoef(series.T)
        np.testing.assert_allclose(ours, theirs, atol=1e-10)


class TestPhaseMetricLevels:
    @pytest.fixture()
    def level_vector(self, spark_lr, small_cluster):
        phase = Phase(
            name="p", kind=PhaseKind.COMPUTE, tasks=32,
            cpu_secs_per_task=5.0, disk_read_gb=0.2, disk_write_gb=0.1,
            net_gb=0.05, mem_gb_per_task=1.0,
        )
        result = BSPScheduler().simulate_phase(phase, small_cluster)
        return phase_metric_levels(result, spark_lr, small_cluster)

    def test_vector_length(self, level_vector):
        assert level_vector.shape == (NUM_METRICS,)
        assert np.all(level_vector >= 0)

    def test_cpu_shares_sum_to_at_most_one(self, level_vector):
        total = sum(
            level_vector[METRIC_INDEX[m]]
            for m in ("cpu_user", "cpu_system", "cpu_idle", "cpu_wait")
        )
        assert total <= 1.05  # small daemon constant allowed

    def test_compute_phase_counts_compute_tasks(self, level_vector):
        assert (
            level_vector[METRIC_INDEX["tasks_compute"]]
            > level_vector[METRIC_INDEX["tasks_communication"]]
        )

    def test_communication_phase_counts_comm_tasks(self, spark_lr, small_cluster):
        phase = Phase(
            name="s", kind=PhaseKind.COMMUNICATION, tasks=16,
            cpu_secs_per_task=0.1, net_gb=0.5, mem_gb_per_task=0.2,
        )
        result = BSPScheduler().simulate_phase(phase, small_cluster)
        levels = phase_metric_levels(result, spark_lr, small_cluster)
        assert (
            levels[METRIC_INDEX["tasks_communication"]]
            > levels[METRIC_INDEX["tasks_compute"]]
        )

    def test_spill_raises_swap_metric(self, spark_lr, small_cluster):
        phase = Phase(
            name="x", kind=PhaseKind.COMPUTE, tasks=4,
            cpu_secs_per_task=1.0, mem_gb_per_task=40.0,
        )
        result = BSPScheduler().simulate_phase(phase, small_cluster)
        levels = phase_metric_levels(result, spark_lr, small_cluster)
        assert levels[METRIC_INDEX["mem_swap"]] > 0


class TestEngineSharedState:
    def test_engines_are_stateless_across_specs(self, spark_lr):
        engine = get_engine("spark")
        c1 = Cluster(vm=get_vm_type("m5.large"), nodes=2)
        c2 = Cluster(vm=get_vm_type("r5.8xlarge"), nodes=8)
        a1 = engine.plan(spark_lr, c1)
        _ = engine.plan(spark_lr, c2)
        a2 = engine.plan(spark_lr, c1)
        assert [p.name for p in a1] == [p.name for p in a2]
        assert [p.tasks for p in a1] == [p.tasks for p in a2]

    def test_plan_is_pure(self, spark_lr, small_cluster):
        engine = get_engine("spark")
        p1 = engine.plan(spark_lr, small_cluster)
        p2 = engine.plan(spark_lr, small_cluster)
        assert p1 == p2
