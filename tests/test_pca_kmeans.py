"""Tests for the from-scratch PCA and K-Means implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.kmeans import KMeans
from repro.analysis.pca import PCA
from repro.errors import ValidationError


class TestPCA:
    @pytest.fixture()
    def gaussian_data(self, rng):
        cov = np.array([[4.0, 1.0], [1.0, 0.5]])
        return rng.multivariate_normal([1.0, -2.0], cov, size=400)

    def test_components_orthonormal(self, gaussian_data):
        p = PCA().fit(gaussian_data)
        gram = p.components_ @ p.components_.T
        np.testing.assert_allclose(gram, np.eye(len(gram)), atol=1e-10)

    def test_explained_variance_descending_and_normalized(self, gaussian_data):
        p = PCA().fit(gaussian_data)
        evr = p.explained_variance_ratio_
        assert np.all(np.diff(evr) <= 1e-12)
        assert evr.sum() == pytest.approx(1.0)

    def test_first_component_captures_dominant_axis(self, rng):
        x = rng.normal(size=300)
        data = np.column_stack([x, 0.01 * rng.normal(size=300)])
        p = PCA(n_components=1).fit(data)
        assert abs(p.components_[0, 0]) > 0.99

    def test_transform_inverse_roundtrip(self, gaussian_data):
        p = PCA().fit(gaussian_data)  # full rank
        z = p.transform(gaussian_data)
        back = p.inverse_transform(z)
        np.testing.assert_allclose(back, gaussian_data, atol=1e-8)

    def test_reconstruction_improves_with_components(self, rng):
        data = rng.normal(size=(100, 6)) @ rng.normal(size=(6, 6))
        errs = []
        for k in (1, 3, 6):
            p = PCA(n_components=k).fit(data)
            recon = p.inverse_transform(p.transform(data))
            errs.append(float(((data - recon) ** 2).sum()))
        assert errs[0] >= errs[1] >= errs[2]

    def test_importance_index_sums_to_one(self, gaussian_data):
        imp = PCA().fit(gaussian_data).importance_index()
        assert imp.sum() == pytest.approx(1.0)
        assert np.all(imp >= 0)

    def test_importance_favours_high_variance_feature(self, rng):
        data = np.column_stack(
            [10.0 * rng.normal(size=200), 0.01 * rng.normal(size=200)]
        )
        imp = PCA().fit(data).importance_index()
        assert imp[0] > imp[1]

    def test_unfitted_raises(self):
        with pytest.raises(ValidationError):
            PCA().transform(np.zeros((3, 2)))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            PCA().fit(np.zeros((1, 4)))

    @given(arrays(np.float64, (12, 4), elements=st.floats(-50, 50)))
    @settings(max_examples=30, deadline=None)
    def test_evr_bounded_property(self, X):
        p = PCA().fit(X)
        assert np.all(p.explained_variance_ratio_ >= -1e-12)
        assert p.explained_variance_ratio_.sum() <= 1.0 + 1e-9


class TestKMeans:
    @pytest.fixture()
    def three_blobs(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        points = np.vstack(
            [c + 0.3 * rng.normal(size=(40, 2)) for c in centers]
        )
        return points, centers

    def test_recovers_separated_blobs(self, three_blobs):
        points, centers = three_blobs
        km = KMeans(3, seed=0).fit(points)
        found = km.centers_[np.argsort(km.centers_[:, 0] + 100 * km.centers_[:, 1])]
        want = centers[np.argsort(centers[:, 0] + 100 * centers[:, 1])]
        np.testing.assert_allclose(found, want, atol=0.5)

    def test_labels_partition_data(self, three_blobs):
        points, _ = three_blobs
        km = KMeans(3, seed=0).fit(points)
        assert set(km.labels_) == {0, 1, 2}
        assert km.labels_.shape == (len(points),)

    def test_inertia_decreases_with_k(self, three_blobs):
        points, _ = three_blobs
        inertias = [KMeans(k, seed=0).fit(points).inertia_ for k in (1, 2, 3, 6)]
        assert inertias == sorted(inertias, reverse=True)

    def test_predict_assigns_nearest_center(self, three_blobs):
        points, _ = three_blobs
        km = KMeans(3, seed=0).fit(points)
        label = km.predict(np.array([[10.1, -0.2]]))[0]
        center = km.centers_[label]
        assert np.linalg.norm(center - [10.0, 0.0]) < 1.0

    def test_predict_1d_input(self, three_blobs):
        points, _ = three_blobs
        km = KMeans(3, seed=0).fit(points)
        assert km.predict(points[0]).shape == (1,)

    def test_deterministic_per_seed(self, three_blobs):
        points, _ = three_blobs
        a = KMeans(3, seed=5).fit(points)
        b = KMeans(3, seed=5).fit(points)
        np.testing.assert_array_equal(a.labels_, b.labels_)
        assert a.inertia_ == b.inertia_

    def test_k_equal_n_gives_zero_inertia(self, rng):
        points = rng.normal(size=(6, 3))
        km = KMeans(6, seed=0, n_init=8).fit(points)
        assert km.inertia_ == pytest.approx(0.0, abs=1e-9)

    def test_duplicate_points_handled(self):
        points = np.vstack([np.zeros((5, 2)), np.ones((5, 2))])
        km = KMeans(2, seed=0).fit(points)
        assert km.inertia_ == pytest.approx(0.0, abs=1e-12)

    def test_k_larger_than_n_rejected(self, rng):
        with pytest.raises(ValidationError):
            KMeans(10).fit(rng.normal(size=(4, 2)))

    def test_invalid_hyperparams_rejected(self):
        with pytest.raises(ValidationError):
            KMeans(0)
        with pytest.raises(ValidationError):
            KMeans(2, n_init=0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValidationError):
            KMeans(2).predict(np.zeros((1, 2)))

    @given(
        arrays(
            np.float64,
            (20, 3),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_inertia_nonnegative_and_labels_valid(self, X, k):
        km = KMeans(k, seed=0, n_init=2, max_iter=30).fit(X)
        assert km.inertia_ >= 0
        assert np.all((0 <= km.labels_) & (km.labels_ < k))

    @given(arrays(np.float64, (15, 2), elements=st.floats(-10, 10)))
    @settings(max_examples=25, deadline=None)
    def test_centers_within_data_hull_box(self, X):
        km = KMeans(3, seed=0, n_init=2, max_iter=30).fit(X)
        assert np.all(km.centers_ >= X.min(axis=0) - 1e-9)
        assert np.all(km.centers_ <= X.max(axis=0) + 1e-9)
