"""Tests for model persistence, the workload generator, and stats helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_mean_ci, mape, percentile_band
from repro.core.persistence import FORMAT_VERSION, load_selector, save_selector
from repro.core.vesta import VestaSelector
from repro.errors import ValidationError
from repro.frameworks.registry import simulate_run
from repro.workloads.generators import ARCHETYPES, WorkloadGenerator
from repro.workloads.catalog import get_workload


class TestPersistence:
    def test_roundtrip_preserves_knowledge(self, fitted_vesta, tmp_path):
        path = save_selector(fitted_vesta, tmp_path / "vesta.npz")
        loaded = load_selector(path)
        np.testing.assert_array_equal(loaded.perf, fitted_vesta.perf)
        np.testing.assert_array_equal(loaded.U, fitted_vesta.U)
        np.testing.assert_array_equal(loaded.V, fitted_vesta.V)
        np.testing.assert_array_equal(loaded.kept_features, fitted_vesta.kept_features)
        assert loaded.label_space.feature_names == fitted_vesta.label_space.feature_names
        assert [w.name for w in loaded.sources] == [w.name for w in fitted_vesta.sources]

    def test_loaded_selector_selects_identically(self, fitted_vesta, tmp_path):
        path = save_selector(fitted_vesta, tmp_path / "vesta.npz")
        loaded = load_selector(path)
        spec = get_workload("spark-grep")
        a = fitted_vesta.online(spec).recommend()
        b = loaded.online(spec).recommend()
        assert a.vm_name == b.vm_name
        assert a.predicted_runtime_s == pytest.approx(b.predicted_runtime_s)

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            save_selector(VestaSelector(), tmp_path / "x.npz")

    def test_suffix_added_when_missing(self, fitted_vesta, tmp_path):
        path = save_selector(fitted_vesta, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_version_mismatch_rejected(self, fitted_vesta, tmp_path):
        import json

        path = save_selector(fitted_vesta, tmp_path / "vesta.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["format_version"] = FORMAT_VERSION + 1
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(tmp_path / "future.npz", **arrays)
        with pytest.raises(ValidationError):
            load_selector(tmp_path / "future.npz")

    def test_corrupt_names_rejected(self, fitted_vesta, tmp_path):
        import json

        path = save_selector(fitted_vesta, tmp_path / "vesta.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["vms"][0] = "warp.42xlarge"
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ValidationError):
            load_selector(tmp_path / "bad.npz")


class TestWorkloadGenerator:
    def test_seeded_reproducibility(self):
        a = WorkloadGenerator(seed=3).sample_many(5)
        b = WorkloadGenerator(seed=3).sample_many(5)
        assert [w.name for w in a] == [w.name for w in b]
        assert [w.input_gb for w in a] == [w.input_gb for w in b]

    def test_archetype_constrains_profile(self):
        gen = WorkloadGenerator(seed=1)
        for _ in range(10):
            w = gen.sample(archetype="iterative-ml", framework="spark")
            assert w.demand.iterations >= 5
            assert w.demand.cacheable_fraction >= 0.8
            a = ARCHETYPES["iterative-ml"]
            assert a.compute_per_gb[0] <= w.demand.compute_per_gb <= a.compute_per_gb[1]

    def test_hive_samples_get_plans(self):
        gen = WorkloadGenerator(seed=2)
        w = gen.sample(framework="hive")
        assert w.sql_ops

    def test_generated_workloads_simulate_everywhere(self):
        gen = WorkloadGenerator(seed=4)
        for w in gen.sample_many(6):
            r = simulate_run(w, "m5.xlarge", with_timeseries=False)
            assert r.runtime_s > 0

    def test_unique_names(self):
        gen = WorkloadGenerator(seed=5)
        names = [w.name for w in gen.sample_many(20)]
        assert len(set(names)) == 20

    def test_unknown_archetype_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadGenerator().sample(archetype="quantum")

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadGenerator().sample_many(-1)

    def test_generated_selectable_by_vesta(self, fitted_vesta):
        w = WorkloadGenerator(seed=6).sample(archetype="iterative-ml", framework="spark")
        rec = fitted_vesta.select(w)
        assert rec.predicted_runtime_s > 0


class TestStats:
    def test_mape_equation7(self):
        pred = np.array([110.0, 90.0])
        truth = np.array([100.0, 100.0])
        assert mape(pred, truth) == pytest.approx(10.0)

    def test_mape_zero_for_perfect(self):
        x = np.array([3.0, 5.0, 7.0])
        assert mape(x, x) == 0.0

    def test_mape_validation(self):
        with pytest.raises(ValidationError):
            mape(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            mape(np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValidationError):
            mape(np.array([]), np.array([]))

    def test_percentile_band_paper_default(self, rng):
        values = rng.normal(size=1000)
        lo, hi = percentile_band(values)
        assert lo < np.median(values) < hi

    def test_percentile_band_validation(self):
        with pytest.raises(ValidationError):
            percentile_band(np.array([]))
        with pytest.raises(ValidationError):
            percentile_band(np.array([1.0]), lo=80, hi=20)

    def test_bootstrap_ci_contains_mean(self, rng):
        values = rng.normal(5.0, 1.0, size=200)
        lo, hi = bootstrap_mean_ci(values, seed=1)
        assert lo < values.mean() < hi
        assert hi - lo < 1.0

    def test_bootstrap_ci_deterministic(self, rng):
        values = rng.normal(size=50)
        assert bootstrap_mean_ci(values, seed=2) == bootstrap_mean_ci(values, seed=2)

    @given(st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_mape_nonnegative_property(self, truth):
        t = np.array(truth)
        assert mape(t * 1.1, t) >= 0
        assert mape(t, t) == pytest.approx(0.0)
