"""Tests for the staged knowledge pipeline and incremental refit.

The regression bar for the refactor: a staged fit must be bit-identical
to the old monolithic offline phase (replicated inline as
``_monolithic_fit``), whether stages were computed, served from the
in-process cache, or loaded from a store — and ``refit`` must re-run
exactly the stages downstream of the changed hyperparameter, with zero
profiling-campaign runs when the upstream artifacts are warm.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.feature_selection import select_by_importance
from repro.analysis.kmeans import KMeans
from repro.baselines.ground_truth import GroundTruth
from repro.baselines.paris import Paris
from repro.cloud.vmtypes import catalog
from repro.core.artifacts import ArtifactStore
from repro.core.persistence import FORMAT_VERSION, load_selector, save_selector
from repro.core.pipeline import CACHED_STAGES, NEAR_BEST_TAU, STAGES
from repro.core.labels import LabelSpace
from repro.core.vesta import VestaSelector
from repro.errors import ValidationError
from repro.workloads.catalog import training_set

SEED = 3
K = 3
V1_ARCHIVE = Path(__file__).parent / "data" / "vesta_v1.npz"


@pytest.fixture(scope="module")
def sources():
    return training_set()[:3]


@pytest.fixture(scope="module")
def vms():
    return catalog()[:8]


@pytest.fixture(scope="module")
def target():
    return training_set()[4]


def small_vesta(sources, vms, store=None, **overrides):
    params = dict(seed=SEED, k=K)
    params.update(overrides)
    return VestaSelector(sources=sources, vms=vms, store=store, **params)


def _monolithic_fit(sel: VestaSelector) -> dict[str, np.ndarray]:
    """The pre-pipeline offline phase, replicated step for step."""
    perf = sel.campaign.runtime_matrix(sel.sources, sel.vms)
    corr_vms = sel._corr_probe_vms()
    sel.campaign.collect_grid(sel.sources, corr_vms)
    correlations = np.empty((len(sel.sources), len(sel.signature_names())))
    for i, spec in enumerate(sel.sources):
        correlations[i] = sel._source_signature(spec, corr_vms)
    kept, importance = select_by_importance(correlations, keep_mass=sel.keep_mass)
    label_space = LabelSpace(
        tuple(sel.signature_names()[i] for i in kept),
        width=sel.label_width,
        softness=sel.label_softness,
    )
    U = label_space.membership_matrix(correlations[:, kept])
    best = perf.min(axis=1, keepdims=True)
    near_best = np.exp(-(perf / best - 1.0) / NEAR_BEST_TAU)
    label_mass = U.sum(axis=0)
    v_raw = (near_best.T @ U) / np.where(label_mass > 0, label_mass, 1.0)
    kmeans = KMeans(min(sel.k, len(sel.vms)), seed=sel.seed).fit(near_best.T)
    V = np.empty_like(v_raw)
    for c in range(kmeans.k):
        members = kmeans.labels_ == c
        if members.any():
            V[members] = v_raw[members].mean(axis=0)
    return {
        "perf": perf,
        "correlations": correlations,
        "kept_features": np.asarray(kept, dtype=np.int64),
        "feature_importance": np.asarray(importance, dtype=float),
        "U": U,
        "near_best": near_best,
        "V": V,
        "vm_clusters": np.asarray(kmeans.labels_, dtype=np.int64),
    }


class TestStagedFitBitIdentity:
    def test_matches_monolithic_reference(self, sources, vms):
        staged = small_vesta(sources, vms).fit()
        reference = _monolithic_fit(small_vesta(sources, vms))
        for name, expected in reference.items():
            np.testing.assert_array_equal(
                getattr(staged, name), expected, err_msg=name
            )

    def test_stage_report_covers_all_stages(self, sources, vms):
        staged = small_vesta(sources, vms).fit()
        assert tuple(staged.stage_report) == STAGES
        assert all(r.action == "computed" for r in staged.stage_report.values())

    def test_store_served_fit_bit_identical(self, sources, vms, target, tmp_path):
        path = str(tmp_path / "store.sqlite")
        cold = small_vesta(sources, vms, store=path).fit()
        warm = small_vesta(sources, vms, store=path).fit()
        assert all(
            warm.stage_report[name].action == "store" for name in CACHED_STAGES
        )
        assert warm.campaign.counters.computed == 0
        for name in ("perf", "correlations", "U", "V", "vm_clusters", "near_best"):
            np.testing.assert_array_equal(
                getattr(warm, name), getattr(cold, name), err_msg=name
            )
        a = cold.online(target).recommend()
        b = warm.online(target).recommend()
        assert a.vm_name == b.vm_name
        assert a.predicted_runtime_s == b.predicted_runtime_s
        np.testing.assert_array_equal(
            cold.online(target).predict_runtimes(),
            warm.online(target).predict_runtimes(),
        )

    def test_memory_served_refit_identical_predictions(self, sources, vms, target):
        sel = small_vesta(sources, vms).fit()
        before = sel.online(target).predict_runtimes()
        sel.refit()  # no hyperparameter change: everything from memory
        assert all(
            sel.stage_report[name].action == "memory" for name in CACHED_STAGES
        )
        np.testing.assert_array_equal(sel.online(target).predict_runtimes(), before)

    def test_close_to_prerefactor_archive(self, sources, vms):
        """Continuity with the checked-in pre-refactor (v1) fit.

        Exact equality holds on the platform that wrote the archive;
        a tight allclose keeps the check meaningful where libm details
        differ.
        """
        archived = load_selector(V1_ARCHIVE)
        staged = small_vesta(sources, vms).fit()
        for name in ("perf", "correlations", "U", "V", "near_best"):
            np.testing.assert_allclose(
                getattr(staged, name),
                getattr(archived, name),
                rtol=1e-10,
                err_msg=name,
            )
        np.testing.assert_array_equal(staged.vm_clusters, archived.vm_clusters)


class TestRefit:
    def test_refit_k_reuses_upstream_zero_campaign_runs(self, sources, vms):
        sel = small_vesta(sources, vms).fit()
        computed_after_fit = sel.campaign.counters.computed
        sel.refit(k=5)
        actions = {name: r.action for name, r in sel.stage_report.items()}
        assert actions["perf_matrix"] == "memory"
        assert actions["corr_signatures"] == "memory"
        assert actions["feature_selection"] == "memory"
        assert actions["labels_u"] == "memory"
        assert actions["affinity_v"] == "computed"
        assert sel.campaign.counters.computed == computed_after_fit
        fresh = small_vesta(sources, vms, k=5).fit()
        np.testing.assert_array_equal(sel.V, fresh.V)
        np.testing.assert_array_equal(sel.vm_clusters, fresh.vm_clusters)
        np.testing.assert_array_equal(sel.U, fresh.U)

    def test_k_sweep_zero_campaign_runs_after_first_fit(self, sources, vms):
        sel = small_vesta(sources, vms, k=2).fit()
        computed_after_fit = sel.campaign.counters.computed
        for k in (3, 4, 5):
            sel.refit(k=k)
            assert sel.stage_report["labels_u"].action == "memory"
        assert sel.campaign.counters.computed == computed_after_fit

    def test_refit_lambda_recomputes_only_source_factors(self, sources, vms):
        # λ feeds the offline CMF factorization (the source_factors
        # stage) but no profiling-derived stage: a λ refit re-solves the
        # factorization and serves everything else from memory.
        sel = small_vesta(sources, vms).fit()
        computed_after_fit = sel.campaign.counters.computed
        sel.refit(lam=0.5)
        actions = {name: r.action for name, r in sel.stage_report.items()}
        assert actions["source_factors"] == "computed"
        assert all(
            actions[name] == "memory"
            for name in CACHED_STAGES - {"source_factors"}
        )
        assert sel.campaign.counters.computed == computed_after_fit
        assert sel.lam == 0.5

    def test_refit_keep_mass_recomputes_selection_onward(self, sources, vms):
        sel = small_vesta(sources, vms).fit()
        computed_after_fit = sel.campaign.counters.computed
        sel.refit(keep_mass=0.6)
        actions = {name: r.action for name, r in sel.stage_report.items()}
        assert actions["perf_matrix"] == "memory"
        assert actions["corr_signatures"] == "memory"
        assert actions["feature_selection"] == "computed"
        assert actions["labels_u"] == "computed"
        assert actions["affinity_v"] == "computed"
        assert sel.campaign.counters.computed == computed_after_fit

    def test_refit_label_width_matches_fresh_fit(self, sources, vms):
        sel = small_vesta(sources, vms).fit()
        sel.refit(label_width=0.1)
        fresh = small_vesta(sources, vms, label_width=0.1).fit()
        np.testing.assert_array_equal(sel.U, fresh.U)
        np.testing.assert_array_equal(sel.V, fresh.V)

    def test_refit_unknown_param_rejected(self, sources, vms):
        sel = small_vesta(sources, vms).fit()
        with pytest.raises(ValidationError):
            sel.refit(bogus=1)

    def test_refit_invalid_value_rejected(self, sources, vms):
        sel = small_vesta(sources, vms).fit()
        with pytest.raises(ValidationError):
            sel.refit(k=0)


class TestSharedPerfMatrixArtifact:
    def test_ground_truth_zero_duplicate_runs(self, sources, vms):
        store = ArtifactStore(":memory:")
        fitted = small_vesta(sources, vms, store=store).fit()
        gt = GroundTruth(vms=vms, seed=SEED, store=store)
        for i, spec in enumerate(sources):
            np.testing.assert_array_equal(gt.runtimes(spec), fitted.perf[i])
        assert gt.campaign.counters.computed == 0

    def test_ground_truth_uncovered_workload_still_computes(self, sources, vms):
        store = ArtifactStore(":memory:")
        small_vesta(sources, vms, store=store).fit()
        gt = GroundTruth(vms=vms, seed=SEED, store=store)
        uncovered = training_set()[5]
        bare = GroundTruth(vms=vms, seed=SEED)
        np.testing.assert_array_equal(gt.runtimes(uncovered), bare.runtimes(uncovered))
        assert gt.campaign.counters.computed == len(vms)

    def test_paris_reuses_label_matrix(self, sources, vms, target):
        store = ArtifactStore(":memory:")
        small_vesta(sources, vms, store=store).fit()
        shared = Paris(vms=vms, seed=SEED, store=store).fit(sources)
        bare = Paris(vms=vms, seed=SEED).fit(sources)
        # The (workload x VM) label grid is owned by the PerfMatrix
        # artifact; only the reference-VM fingerprint runs remain.
        assert (
            shared.campaign.counters.computed
            < bare.campaign.counters.computed - len(sources) * len(vms) // 2
        )
        assert shared.select(target) == bare.select(target)
        np.testing.assert_array_equal(
            shared.predict_runtimes(target), bare.predict_runtimes(target)
        )

    def test_mismatched_campaign_not_reused(self, sources, vms):
        store = ArtifactStore(":memory:")
        small_vesta(sources, vms, store=store).fit()
        gt = GroundTruth(vms=vms, seed=SEED + 1, store=store)  # different seed
        gt.runtimes(sources[0])
        assert gt.campaign.counters.computed == len(vms)


class TestPersistenceCompat:
    def test_v1_archive_loads(self, target):
        sel = load_selector(V1_ARCHIVE)
        assert sel._fitted
        assert sel.perf.shape == (len(sel.sources), len(sel.vms))
        assert sel.U.shape[0] == len(sel.sources)
        rec = sel.online(target).recommend()
        assert rec.vm_name in {vm.name for vm in sel.vms}

    def test_v2_roundtrip_bit_identical(self, sources, vms, target, tmp_path):
        sel = small_vesta(sources, vms).fit()
        path = save_selector(sel, tmp_path / "model.npz")
        loaded = load_selector(path)
        for name in ("perf", "correlations", "U", "V", "near_best", "vm_clusters"):
            np.testing.assert_array_equal(
                getattr(loaded, name), getattr(sel, name), err_msg=name
            )
        a = sel.online(target).recommend()
        b = loaded.online(target).recommend()
        assert (a.vm_name, a.predicted_runtime_s) == (b.vm_name, b.predicted_runtime_s)

    def test_v2_archive_records_stage_fingerprints(self, sources, vms, tmp_path):
        import json

        sel = small_vesta(sources, vms).fit()
        path = save_selector(sel, tmp_path / "model.npz")
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
        assert meta["format_version"] == FORMAT_VERSION
        # An unpromoted selector stamps no "promotions" fingerprint (the
        # stage is gated so pre-lifecycle artifacts keep their address).
        assert set(meta["stage_fingerprints"]) == set(STAGES) - {"promotions"}
        assert meta["stage_fingerprints"] == {
            name: r.fingerprint
            for name, r in sel.stage_report.items()
            if r.fingerprint
        }

    def test_refit_after_load_reuses_archived_stages(self, sources, vms, tmp_path):
        path = save_selector(
            small_vesta(sources, vms).fit(), tmp_path / "model.npz"
        )
        loaded = load_selector(path)
        loaded.refit(k=5)
        actions = {name: r.action for name, r in loaded.stage_report.items()}
        assert actions["perf_matrix"] == "memory"
        assert actions["labels_u"] == "memory"
        assert actions["affinity_v"] == "computed"
        assert loaded.campaign.counters.computed == 0
        fresh = small_vesta(sources, vms, k=5).fit()
        np.testing.assert_array_equal(loaded.V, fresh.V)

    def test_future_version_rejected(self, sources, vms, tmp_path):
        import json

        path = save_selector(small_vesta(sources, vms).fit(), tmp_path / "m.npz")
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["format_version"] = FORMAT_VERSION + 1
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(tmp_path / "future.npz", **arrays)
        with pytest.raises(ValidationError):
            load_selector(tmp_path / "future.npz")


class TestStoreResilienceInFit:
    def test_corrupt_store_file_recomputes_never_crashes(
        self, sources, vms, tmp_path
    ):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"garbage" * 64)
        sel = small_vesta(sources, vms, store=str(path)).fit()
        assert sel.store.recovered
        assert all(r.action == "computed" for r in sel.stage_report.values())
        reference = _monolithic_fit(small_vesta(sources, vms))
        np.testing.assert_array_equal(sel.perf, reference["perf"])
        np.testing.assert_array_equal(sel.V, reference["V"])

    def test_corrupt_artifact_treated_as_miss(self, sources, vms, tmp_path):
        path = str(tmp_path / "store.sqlite")
        cold = small_vesta(sources, vms, store=path).fit()
        # Overwrite one stage's artifact with inconsistent arrays under
        # the same fingerprint: apply-time validation must reject it and
        # the pipeline recompute, not crash or serve bad shapes.
        store = ArtifactStore(path)
        key = cold.stage_report["labels_u"].fingerprint
        store.put(key, "labels_u", {"U": np.zeros((1, 1))})
        store.close()
        warm = small_vesta(sources, vms, store=path).fit()
        assert warm.stage_report["labels_u"].action == "computed"
        np.testing.assert_array_equal(warm.U, cold.U)
