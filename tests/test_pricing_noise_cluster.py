"""Tests for pricing, cloud-noise, and cluster resource math."""

import numpy as np
import pytest

from repro.cloud.cluster import Cluster, OS_MEMORY_RESERVE_GB
from repro.cloud.noise import CloudNoiseModel
from repro.cloud.pricing import MIN_BILLED_SECONDS, budget_for_runtime, hourly_price
from repro.cloud.vmtypes import get_vm_type
from repro.errors import ValidationError


class TestPricing:
    def test_hourly_price_scales_with_nodes(self, m5_xlarge):
        assert hourly_price(m5_xlarge, 4) == pytest.approx(4 * m5_xlarge.price_per_hour)

    def test_budget_is_linear_above_minimum(self, m5_xlarge):
        b1 = budget_for_runtime(m5_xlarge, 3600.0)
        assert b1 == pytest.approx(m5_xlarge.price_per_hour)
        assert budget_for_runtime(m5_xlarge, 7200.0) == pytest.approx(2 * b1)

    def test_minimum_billing_applies(self, m5_xlarge):
        short = budget_for_runtime(m5_xlarge, 10.0)
        at_min = budget_for_runtime(m5_xlarge, MIN_BILLED_SECONDS)
        assert short == pytest.approx(at_min)

    def test_zero_runtime_still_billed_minimum(self, m5_xlarge):
        assert budget_for_runtime(m5_xlarge, 0.0) > 0

    @pytest.mark.parametrize("bad", [-1.0])
    def test_negative_runtime_rejected(self, m5_xlarge, bad):
        with pytest.raises(ValidationError):
            budget_for_runtime(m5_xlarge, bad)

    def test_zero_nodes_rejected(self, m5_xlarge):
        with pytest.raises(ValidationError):
            hourly_price(m5_xlarge, 0)


class TestNoise:
    def test_seeded_reproducibility(self):
        a = CloudNoiseModel(seed=3).sample_multipliers(20)
        b = CloudNoiseModel(seed=3).sample_multipliers(20)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = CloudNoiseModel(seed=3).sample_multipliers(20)
        b = CloudNoiseModel(seed=4).sample_multipliers(20)
        assert not np.array_equal(a, b)

    def test_multipliers_positive(self):
        m = CloudNoiseModel(seed=0).sample_multipliers(500)
        assert np.all(m > 0)

    def test_mean_near_one_without_stragglers(self):
        model = CloudNoiseModel(sigma=0.06, straggler_prob=0.0, seed=1)
        m = model.sample_multipliers(4000)
        assert m.mean() == pytest.approx(1.0, abs=0.01)

    def test_variance_boost_raises_spread(self):
        base = CloudNoiseModel(straggler_prob=0, seed=5).sample_multipliers(2000)
        boosted = CloudNoiseModel(straggler_prob=0, seed=5).sample_multipliers(2000, variance_boost=6.0)
        assert boosted.std() > 3 * base.std()

    def test_stragglers_only_slow_down(self):
        model = CloudNoiseModel(sigma=0.0, straggler_prob=1.0, seed=2)
        s = model.sample(1.0)
        assert s.straggler
        assert s.multiplier > 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            CloudNoiseModel(sigma=-1)
        with pytest.raises(ValidationError):
            CloudNoiseModel(straggler_prob=1.5)
        with pytest.raises(ValidationError):
            CloudNoiseModel().sample(variance_boost=0)
        with pytest.raises(ValidationError):
            CloudNoiseModel().sample_multipliers(-1)


class TestCluster:
    def test_aggregate_resources(self, small_cluster, m5_xlarge):
        assert small_cluster.total_vcpus == 16
        assert small_cluster.total_mem_gb == pytest.approx(64.0)
        assert small_cluster.total_disk_mbps == pytest.approx(4 * m5_xlarge.disk_mbps)

    def test_usable_memory_reserves_os(self, small_cluster, m5_xlarge):
        assert small_cluster.usable_mem_per_node_gb == pytest.approx(
            m5_xlarge.mem_gb - OS_MEMORY_RESERVE_GB
        )

    def test_tiny_node_reserve_is_proportional(self):
        vm = get_vm_type("c4n.small")  # ~0.94 GB node
        cluster = Cluster(vm=vm, nodes=1)
        assert 0 < cluster.usable_mem_per_node_gb < vm.mem_gb
        assert cluster.usable_mem_per_node_gb == pytest.approx(0.75 * vm.mem_gb)

    def test_concurrency_bounded_by_vcpus(self, small_cluster):
        assert small_cluster.concurrent_tasks_per_node(0.0) == 4
        assert small_cluster.concurrent_tasks_per_node(0.1) == 4

    def test_concurrency_bounded_by_memory(self, small_cluster):
        # 15 GB usable, 6 GB tasks -> 2 fit
        assert small_cluster.concurrent_tasks_per_node(6.0) == 2

    def test_oversized_task_returns_zero(self, small_cluster):
        assert small_cluster.concurrent_tasks_per_node(100.0) == 0

    def test_budget_matches_pricing(self, small_cluster, m5_xlarge):
        assert small_cluster.budget(3600.0) == pytest.approx(
            budget_for_runtime(m5_xlarge, 3600.0, nodes=4)
        )

    def test_net_mbps_conversion(self, small_cluster, m5_xlarge):
        assert small_cluster.net_mbps_per_node == pytest.approx(
            m5_xlarge.net_gbps * 125.0
        )

    def test_compute_rate(self, small_cluster, m5_xlarge):
        assert small_cluster.compute_rate == pytest.approx(16 * m5_xlarge.cpu_speed)

    def test_invalid_nodes_rejected(self, m5_xlarge):
        with pytest.raises(ValidationError):
            Cluster(vm=m5_xlarge, nodes=0)

    def test_negative_task_mem_rejected(self, small_cluster):
        with pytest.raises(ValidationError):
            small_cluster.concurrent_tasks_per_node(-1.0)
