"""Correctness of the content-addressed profile cache.

Covers hit/miss accounting, invalidation when any key component changes
(seed, repetitions, noise-model fingerprint), recovery from a corrupted
database file, and concurrent writers sharing one WAL-mode store.
"""

import sqlite3
import threading

import numpy as np
import pytest

from repro.cloud.vmtypes import catalog
from repro.telemetry.campaign import (
    ProfileCache,
    ProfilingCampaign,
    noise_fingerprint,
    profile_cache_key,
)
from repro.telemetry.collector import DataCollector
from repro.workloads.catalog import training_set

SPECS = training_set()[:2]
VMS = catalog()[:3]
REPS = 3
GRID = len(SPECS) * len(VMS)


class TestHitMissAccounting:
    def test_cold_then_warm(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cold = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=path)
        cold.runtime_matrix(SPECS, VMS)
        assert cold.counters.scheduled == GRID
        assert cold.counters.cache_misses == GRID
        assert cold.counters.cache_hits == 0
        assert cold.counters.computed == GRID
        assert cold.counters.hit_rate == 0.0

        warm = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=path)
        warm.runtime_matrix(SPECS, VMS)
        assert warm.counters.cache_hits == GRID
        assert warm.counters.computed == 0
        assert warm.counters.hit_rate == 1.0
        assert warm.counters.progress == 1.0

    def test_memo_hits_within_one_campaign(self):
        campaign = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1)
        campaign.collect_grid(SPECS, VMS)
        campaign.collect_grid(SPECS, VMS)
        assert campaign.counters.scheduled == 2 * GRID
        assert campaign.counters.computed == GRID
        assert campaign.counters.cache_hits == GRID

    def test_cache_object_counts_persistent_lookups(self, tmp_path):
        cache = ProfileCache(str(tmp_path / "cache.sqlite"))
        campaign = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=cache)
        campaign.runtime_matrix(SPECS, VMS)
        assert cache.misses == GRID
        assert cache.hits == 0
        assert len(cache) == GRID


class TestInvalidation:
    def profile_and_key(self, **overrides):
        params = dict(
            spec=SPECS[0],
            vm=VMS[0],
            nodes=SPECS[0].nodes,
            seed=0,
            repetitions=REPS,
            sample_period_s=5.0,
            fingerprint=noise_fingerprint(),
        )
        params.update(overrides)
        return profile_cache_key(**params)

    def test_key_changes_with_each_component(self):
        base = self.profile_and_key()
        assert self.profile_and_key(seed=1) != base
        assert self.profile_and_key(repetitions=REPS + 1) != base
        assert self.profile_and_key(nodes=SPECS[0].nodes + 1) != base
        assert self.profile_and_key(fingerprint="deadbeef") != base
        assert self.profile_and_key(spec=SPECS[1]) != base
        assert self.profile_and_key(vm=VMS[1]) != base
        assert self.profile_and_key(kind="p90") != base

    def test_changed_seed_misses(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=path).runtime_matrix(
            SPECS, VMS
        )
        other = ProfilingCampaign(repetitions=REPS, seed=1, jobs=1, cache=path)
        other.runtime_matrix(SPECS, VMS)
        assert other.counters.cache_hits == 0
        assert other.counters.computed == GRID

    def test_changed_repetitions_misses(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=path).runtime_matrix(
            SPECS, VMS
        )
        other = ProfilingCampaign(
            repetitions=REPS + 2, seed=0, jobs=1, cache=path
        )
        other.runtime_matrix(SPECS, VMS)
        assert other.counters.cache_hits == 0

    def test_changed_fingerprint_prunes_stale_generation(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        old = ProfileCache(path, fingerprint="old-generation")
        campaign = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=old)
        campaign.runtime_matrix(SPECS, VMS)
        assert len(old) == GRID
        old.close()

        fresh = ProfileCache(path)  # current fingerprint differs
        assert fresh.pruned == GRID
        assert len(fresh) == 0
        relying = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=fresh)
        relying.runtime_matrix(SPECS, VMS)
        assert relying.counters.cache_hits == 0
        assert relying.counters.computed == GRID


class TestCorruptionFallback:
    def test_corrupted_file_is_recreated_and_recomputed(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        (tmp_path / "cache.sqlite").write_bytes(b"this is not a sqlite database")
        cache = ProfileCache(path)
        assert cache.recovered
        assert (tmp_path / "cache.sqlite.corrupt").exists()

        campaign = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=cache)
        matrix = campaign.runtime_matrix(SPECS, VMS)
        dc = DataCollector(repetitions=REPS, seed=0)
        expected = np.array([[dc.runtime_only(s, vm) for vm in VMS] for s in SPECS])
        np.testing.assert_array_equal(matrix, expected)

    def test_unopenable_path_degrades_to_memory(self, tmp_path):
        path = str(tmp_path)  # a directory: sqlite cannot open it
        cache = ProfileCache(path)
        assert cache.recovered
        campaign = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=cache)
        matrix = campaign.runtime_matrix(SPECS, VMS)
        assert matrix.shape == (len(SPECS), len(VMS))
        assert campaign.counters.computed == GRID

    def test_write_failure_is_silent(self, tmp_path):
        cache = ProfileCache(str(tmp_path / "cache.sqlite"))
        cache._store.close()  # sabotage: writes now raise underneath
        campaign = ProfilingCampaign(repetitions=REPS, seed=0, jobs=1, cache=cache)
        matrix = campaign.runtime_matrix(SPECS, VMS)  # must not raise
        assert np.isfinite(matrix).all()


class TestConcurrentWriters:
    def test_threaded_writers_do_not_corrupt_the_store(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        seeds = [0, 1, 2, 3]
        errors: list[Exception] = []

        def campaign_run(seed: int) -> None:
            try:
                cache = ProfileCache(path)
                ProfilingCampaign(
                    repetitions=REPS, seed=seed, jobs=1, cache=cache
                ).runtime_matrix(SPECS, VMS)
                cache.close()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=campaign_run, args=(s,)) for s in seeds]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        # Every generation's entries landed and the file is readable.
        check = ProfileCache(path)
        assert len(check) == GRID * len(seeds)
        for seed in seeds:
            warm = ProfilingCampaign(repetitions=REPS, seed=seed, jobs=1, cache=check)
            warm.runtime_matrix(SPECS, VMS)
        assert check.hits == GRID * len(seeds)

    def test_wal_mode_enabled_for_file_backed_cache(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = ProfileCache(path)
        mode = cache._store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        cache.close()
        # and the file survives reopening by plain sqlite
        assert sqlite3.connect(path).execute(
            "SELECT COUNT(*) FROM scalar_cache"
        ).fetchone() == (0,)


class TestStoreNodesThreading:
    def test_get_requires_explicit_nodes(self, tmp_path):
        """The old nodes=4 default silently mismatched cluster sizes."""
        from repro.telemetry.store import MetricsStore

        spec = SPECS[0].with_nodes(6)
        profile = DataCollector(repetitions=2, seed=0).collect(spec, VMS[0])
        with MetricsStore() as store:
            store.put(profile)
            assert store.get(spec.name, VMS[0].name, nodes=6) is not None
            assert store.get(spec.name, VMS[0].name, nodes=4) is None
            with pytest.raises(TypeError):
                store.get(spec.name, VMS[0].name)  # nodes is now required
