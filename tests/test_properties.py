"""Property-based tests (hypothesis) on the simulator's core invariants.

These state the physical laws the BSP model must obey for *any* workload
shape: monotonicity in demand, scale invariance of correlations, bounded
utilizations, and budget consistency.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.cluster import Cluster
from repro.cloud.pricing import MIN_BILLED_SECONDS
from repro.cloud.vmtypes import catalog, get_vm_type
from repro.frameworks.base import BSPScheduler, Phase, PhaseKind
from repro.frameworks.registry import simulate_run
from repro.workloads.catalog import ALGORITHM_PROFILES
from repro.workloads.spec import Suite, UseCase, WorkloadSpec

VM_NAMES = [vm.name for vm in catalog()]

phase_strategy = st.builds(
    Phase,
    name=st.just("prop"),
    kind=st.sampled_from(list(PhaseKind)),
    tasks=st.integers(1, 300),
    cpu_secs_per_task=st.floats(0.0, 50.0),
    disk_read_gb=st.floats(0.0, 2.0),
    disk_write_gb=st.floats(0.0, 2.0),
    net_gb=st.floats(0.0, 2.0),
    mem_gb_per_task=st.floats(0.0, 8.0),
    task_overhead_s=st.floats(0.0, 2.0),
    fixed_overhead_s=st.floats(0.0, 10.0),
)


def spec_strategy():
    return st.builds(
        lambda alg, gb, nodes: WorkloadSpec(
            name=f"prop-{alg}",
            framework="spark",
            algorithm=alg,
            use_case=UseCase.ML,
            suite=Suite.HIBENCH,
            demand=ALGORITHM_PROFILES[alg],
            input_gb=gb,
            nodes=nodes,
        ),
        st.sampled_from(["lr", "sort", "kmeans", "grep", "join"]),
        st.floats(0.5, 20.0),
        st.integers(2, 8),
    )


class TestPhaseProperties:
    @given(phase_strategy, st.sampled_from(VM_NAMES))
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_duration_positive_and_utilizations_bounded(self, phase, vm_name):
        cluster = Cluster(vm=get_vm_type(vm_name), nodes=4)
        r = BSPScheduler().simulate_phase(phase, cluster)
        assert r.duration_s > 0
        assert 0.0 <= r.cpu_busy_frac <= 1.0
        assert 0.0 <= r.io_wait_frac <= 1.0
        assert 0.0 <= r.mem_used_frac <= 1.0
        assert 0.0 <= r.mem_demand_frac <= 1.0
        assert r.disk_read_mbps_node >= 0
        assert r.disk_write_mbps_node >= 0
        assert r.waves == math.ceil(
            phase.tasks / (r.concurrency_per_node * cluster.nodes)
        )

    @given(phase_strategy, st.sampled_from(VM_NAMES), st.floats(1.1, 4.0))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_more_cpu_work_never_faster(self, phase, vm_name, factor):
        cluster = Cluster(vm=get_vm_type(vm_name), nodes=4)
        sched = BSPScheduler()
        base = sched.simulate_phase(phase, cluster).duration_s
        import dataclasses

        heavier = dataclasses.replace(
            phase, cpu_secs_per_task=phase.cpu_secs_per_task * factor + 0.1
        )
        assert sched.simulate_phase(heavier, cluster).duration_s >= base - 1e-9

    @given(phase_strategy, st.sampled_from(VM_NAMES))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_more_nodes_never_slower(self, phase, vm_name):
        vm = get_vm_type(vm_name)
        sched = BSPScheduler()
        small = sched.simulate_phase(phase, Cluster(vm=vm, nodes=2)).duration_s
        big = sched.simulate_phase(phase, Cluster(vm=vm, nodes=8)).duration_s
        # Larger clusters can pay more cross-node traffic per GB shuffled,
        # but a single phase's demands are per-task here, so wall time can
        # only improve or stay flat.
        assert big <= small + 1e-6


class TestRunProperties:
    @given(spec_strategy(), st.sampled_from(VM_NAMES))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_runtime_budget_consistency(self, spec, vm_name):
        r = simulate_run(spec, vm_name, with_timeseries=False)
        vm = get_vm_type(vm_name)
        expected = (
            vm.price_per_hour * spec.nodes * max(r.runtime_s, MIN_BILLED_SECONDS) / 3600
        )
        assert r.budget_usd == pytest.approx(expected)

    @given(spec_strategy(), st.sampled_from(VM_NAMES), st.floats(1.2, 3.0))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_more_data_never_much_faster(self, spec, vm_name, factor):
        # Discrete wave scheduling is not perfectly monotone: growing the
        # input can shift task counts past a packing boundary and shave a
        # few percent (real Spark shows the same quantization artefacts).
        # The property is monotonicity up to that quantization tolerance.
        base = simulate_run(spec, vm_name, with_timeseries=False).runtime_s
        bigger = simulate_run(
            spec.with_input(spec.input_gb * factor), vm_name, with_timeseries=False
        ).runtime_s
        assert bigger >= 0.93 * base

    @given(spec_strategy())
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_correlation_vector_always_valid(self, spec):
        from repro.analysis.correlation import correlation_vector

        r = simulate_run(spec, "m5.xlarge", rng=np.random.default_rng(0))
        v = correlation_vector(r.timeseries)
        assert v.shape == (10,)
        assert np.all(np.abs(v) <= 1.0)
        assert np.all(np.isfinite(v))

    @given(spec_strategy(), st.sampled_from(VM_NAMES))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_determinism(self, spec, vm_name):
        a = simulate_run(spec, vm_name, with_timeseries=False).runtime_s
        b = simulate_run(spec, vm_name, with_timeseries=False).runtime_s
        assert a == b


class TestStreamSeedProperties:
    """The campaign's determinism rests on `_stream_seed` stability."""

    @given(
        st.text(min_size=1, max_size=30),
        st.text(min_size=1, max_size=20),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_stable_32bit_and_reproducible(self, workload, vm_name, seed):
        import zlib

        from repro.telemetry.collector import _stream_seed

        value = _stream_seed(workload, vm_name, seed)
        assert value == _stream_seed(workload, vm_name, seed)
        assert 0 <= value < 2**32
        assert value == zlib.crc32(f"{workload}|{vm_name}|{seed}".encode())

    def test_stable_across_process_boundaries(self):
        """Seeds computed in a spawned interpreter match in-process values.

        Spawn (not fork) forces a genuine re-import of the module in the
        child, which is exactly what a campaign worker on a spawn-default
        platform would do.
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.telemetry.campaign import _stream_seed_batch
        from repro.telemetry.collector import _stream_seed

        triples = [
            (w, v, s)
            for w in ("spark-lr", "hadoop-terasort", "hive-join", "wl|pipe")
            for v in ("m5.xlarge", "c5.large")
            for s in (0, 7, 2**31 - 1)
        ]
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:
            half = len(triples) // 2
            remote = []
            for chunk in pool.map(_stream_seed_batch, [triples[:half], triples[half:]]):
                remote.extend(chunk)
        assert remote == [_stream_seed(w, v, s) for (w, v, s) in triples]


class TestProfileRoundTripProperties:
    """Randomized WorkloadProfile persistence through MetricsStore."""

    finite = st.floats(
        min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
    )

    @given(
        runtimes=st.lists(finite, min_size=1, max_size=12),
        budgets=st.lists(finite, min_size=1, max_size=12),
        samples=st.integers(0, 6),
        nodes=st.integers(1, 16),
        spilled=st.booleans(),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_put_get_roundtrip(self, runtimes, budgets, samples, nodes, spilled, data):
        from repro.telemetry.collector import WorkloadProfile
        from repro.telemetry.metrics import NUM_METRICS
        from repro.telemetry.store import MetricsStore

        series = np.array(
            [
                [data.draw(self.finite) for _ in range(NUM_METRICS)]
                for _ in range(samples)
            ]
        ).reshape(samples, NUM_METRICS)
        profile = WorkloadProfile(
            workload="prop-wl",
            framework="spark",
            vm_name="m5.xlarge",
            nodes=nodes,
            runtimes=np.array(runtimes),
            budgets=np.array(budgets),
            timeseries=series,
            spilled=spilled,
        )
        with MetricsStore() as store:
            store.put(profile)
            back = store.get("prop-wl", "m5.xlarge", nodes=nodes)
        assert back is not None
        assert back.nodes == nodes
        assert back.spilled == spilled
        np.testing.assert_array_equal(back.runtimes, profile.runtimes)
        np.testing.assert_array_equal(back.budgets, profile.budgets)
        np.testing.assert_array_equal(back.timeseries, profile.timeseries)

    @given(
        runtimes=st.lists(finite, min_size=1, max_size=8),
        nodes=st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_cached_roundtrip(self, runtimes, nodes):
        """The content-addressed cache tables preserve profiles too."""
        from repro.telemetry.collector import WorkloadProfile
        from repro.telemetry.metrics import NUM_METRICS
        from repro.telemetry.store import MetricsStore

        profile = WorkloadProfile(
            workload="prop-wl",
            framework="spark",
            vm_name="m5.xlarge",
            nodes=nodes,
            runtimes=np.array(runtimes),
            budgets=np.array(runtimes),
            timeseries=np.zeros((2, NUM_METRICS)),
            spilled=False,
        )
        with MetricsStore() as store:
            store.put_cached("some-key", "fp", profile)
            back = store.get_cached("some-key")
            assert back is not None
            np.testing.assert_array_equal(back.runtimes, profile.runtimes)
            assert back.nodes == nodes
            assert store.get_cached("other-key") is None
