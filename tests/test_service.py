"""Tests for the concurrent selection service.

Covers the selector registry (atomic, fingerprint-gated hot-reload), the
micro-batching scheduler (bit-identity to sequential serving at any
client concurrency, admission control, deadlines, version isolation
within a batch) and the HTTP frontend + client (payload equality with
library selection, typed error mapping, health/stats).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cloud.vmtypes import catalog
from repro.core.persistence import (
    archive_knowledge_fingerprint,
    save_selector,
)
from repro.core.vesta import VestaSelector
from repro.errors import (
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
    ValidationError,
)
from repro.service import (
    MicroBatchScheduler,
    SelectionService,
    SelectorRegistry,
    ServiceClient,
    recommendation_to_dict,
)
from repro.service.server import serve
from repro.telemetry.latency import DurationSummary
from repro.workloads.catalog import get_workload, target_set, training_set

SEED = 7
VMS = catalog()[:10]
SOURCES = training_set()[:5]
TARGETS = tuple(w.name for w in target_set()[:6])


def _fresh_selector(**kwargs) -> VestaSelector:
    return VestaSelector(vms=VMS, sources=SOURCES, seed=SEED, **kwargs).fit()


@pytest.fixture(scope="module")
def selector():
    return _fresh_selector()


@pytest.fixture(scope="module")
def reference():
    """Sequential ground truth: a twin selector serving one at a time."""
    ref = _fresh_selector()
    return {
        (name, objective): ref.select(get_workload(name), objective)
        for name in TARGETS
        for objective in ("time", "budget")
    }


@pytest.fixture(scope="module")
def archive(selector, tmp_path_factory):
    path = tmp_path_factory.mktemp("service") / "knowledge.npz"
    save_selector(selector, path)
    return path


@pytest.fixture()
def registry(selector):
    reg = SelectorRegistry()
    reg.register("default", selector)
    return reg


class TestRegistry:
    def test_register_requires_fitted(self):
        reg = SelectorRegistry()
        with pytest.raises(ValidationError):
            reg.register("raw", VestaSelector(vms=VMS, sources=SOURCES))

    def test_get_unknown_name(self, registry):
        with pytest.raises(ValidationError):
            registry.get("nope")

    def test_handle_identity(self, registry, selector):
        handle = registry.get("default")
        assert handle.selector is selector
        assert handle.fingerprint == selector.knowledge_fingerprint()
        assert handle.generation == 1
        assert "default" in registry and len(registry) == 1
        described = registry.describe()["default"]
        assert described["fingerprint"] == handle.fingerprint
        assert described["vms"] == len(VMS)

    def test_reload_same_fingerprint_is_a_noop(self, registry, archive):
        before = registry.get("default")
        handle, swapped = registry.reload("default", archive)
        assert not swapped
        assert handle is before  # same snapshot, no generation bump

    def test_reload_swaps_on_fingerprint_change(self, archive, tmp_path):
        reg = SelectorRegistry()
        reg.load("default", archive)
        first = reg.get("default")
        other = _fresh_selector(k=5)
        other_path = tmp_path / "other.npz"
        save_selector(other, other_path)
        handle, swapped = reg.reload("default", other_path)
        assert swapped
        assert handle.generation == first.generation + 1
        assert handle.fingerprint != first.fingerprint
        # The old handle still serves for whoever holds it.
        assert first.selector.knowledge_fingerprint() == first.fingerprint

    def test_archive_fingerprint_peek_matches_load(self, selector, archive):
        assert (
            archive_knowledge_fingerprint(archive)
            == selector.knowledge_fingerprint()
        )

    def test_unregister(self, registry):
        registry.unregister("default")
        assert "default" not in registry
        with pytest.raises(ServiceError):
            registry.unregister("default")


def _assert_matches_reference(payload_rec, expected) -> None:
    """Bit-level equality of a served recommendation with the sequential
    reference (exact float equality, full predictions vector)."""
    assert payload_rec.vm_name == expected.vm_name
    assert payload_rec.predicted_runtime_s == expected.predicted_runtime_s
    assert payload_rec.predicted_budget_usd == expected.predicted_budget_usd
    assert payload_rec.converged == expected.converged
    assert payload_rec.predictions == expected.predictions


class TestScheduler:
    @pytest.mark.parametrize("clients", [1, 4, 16])
    def test_bit_identical_to_sequential_at_any_concurrency(
        self, registry, reference, clients
    ):
        requests = [
            (name, objective)
            for name in TARGETS
            for objective in ("time", "budget")
        ] * 2
        with MicroBatchScheduler(
            registry, max_batch=8, max_wait_ms=20.0, queue_limit=256
        ) as sched:
            with ThreadPoolExecutor(max_workers=clients) as pool:
                responses = list(
                    pool.map(lambda r: sched.select(r[0], r[1]), requests)
                )
            stats = sched.stats()
        for (name, objective), response in zip(requests, responses):
            _assert_matches_reference(
                response.recommendation, reference[(name, objective)]
            )
            assert response.fingerprint == registry.get("default").fingerprint
        assert stats["completed"] == len(requests)
        assert stats["rejected"] == 0
        # Repeat requests are answered by the recommendation memo cache
        # (bit-identity asserted above either way); everything else must
        # have flowed through batched waves.
        hits = stats["rec_cache"]["hits"]
        assert sum(
            size_count * int(size)
            for size, size_count in stats["batch_size_histogram"].items()
        ) == len(requests) - hits
        if clients == 1:
            # Sequential submission: the second pass over the request
            # list repeats the first exactly, so every repeat must hit.
            assert hits == len(requests) // 2
        if clients > 1:
            # Concurrent clients must actually coalesce sometimes.
            assert any(
                int(size) > 1 for size in stats["batch_size_histogram"]
            )

    def test_max_batch_one_is_the_sequential_degenerate(self, registry, reference):
        with MicroBatchScheduler(registry, max_batch=1, max_wait_ms=0.0) as sched:
            for name in TARGETS[:3]:
                response = sched.select(name)
                _assert_matches_reference(
                    response.recommendation, reference[(name, "time")]
                )
                assert response.batch_size == 1

    def test_overload_rejects_explicitly(self, registry):
        sched = MicroBatchScheduler(
            registry, max_batch=4, queue_limit=3, start=False
        )
        futures = [sched.submit(TARGETS[0]) for _ in range(3)]
        with pytest.raises(ServiceOverloadedError) as excinfo:
            sched.submit(TARGETS[1])
        assert excinfo.value.queue_limit == 3
        assert sched.stats()["rejected"] == 1
        assert sched.queue_depth == 3  # bounded: rejection, not growth
        sched.start()
        for future in futures:
            assert future.result(timeout=30).recommendation.vm_name
        sched.close()

    def test_expired_deadline_completes_with_error(self, registry):
        sched = MicroBatchScheduler(registry, start=False)
        doomed = sched.submit(TARGETS[0], timeout_s=0.0)
        alive = sched.submit(TARGETS[1], timeout_s=600.0)
        sched.start()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=30)
        assert alive.result(timeout=30).recommendation.vm_name
        stats = sched.stats()
        assert stats["expired"] == 1 and stats["completed"] == 1
        sched.close()

    def test_submit_validates_before_admission(self, registry):
        with MicroBatchScheduler(registry, start=False) as sched:
            with pytest.raises(ValidationError):
                sched.submit(TARGETS[0], objective="latency")
            from repro.errors import CatalogError

            with pytest.raises(CatalogError):
                sched.submit("no-such-workload")
            assert sched.stats()["submitted"] == 0

    def test_close_fails_leftover_requests(self, registry):
        sched = MicroBatchScheduler(registry, start=False)
        future = sched.submit(TARGETS[0])
        sched.close()
        with pytest.raises(ServiceError):
            future.result(timeout=5)
        with pytest.raises(ServiceError):
            sched.submit(TARGETS[0])

    def test_latency_split_accounts_queue_and_service(self, registry):
        with MicroBatchScheduler(registry, max_wait_ms=0.0) as sched:
            response = sched.select(TARGETS[0])
        assert response.queued_ms >= 0.0
        assert response.service_ms >= 0.0


class TestHotReload:
    def test_no_version_mixing_within_a_response(self, archive, tmp_path):
        """Concurrent selects during repeated hot-reloads: every response
        comes from exactly one knowledge version and is bit-identical to
        that version's own sequential answer."""
        other = _fresh_selector(k=5)
        other_path = tmp_path / "other.npz"
        save_selector(other, other_path)

        reg = SelectorRegistry()
        reg.load("default", archive)
        fp_a = reg.get("default").fingerprint
        fp_b = other.knowledge_fingerprint()
        assert fp_a != fp_b

        ref_a, ref_b = _fresh_selector(), _fresh_selector(k=5)
        reference = {
            fp_a: {n: ref_a.select(get_workload(n)) for n in TARGETS},
            fp_b: {n: ref_b.select(get_workload(n)) for n in TARGETS},
        }

        responses = []
        responses_lock = threading.Lock()
        stop = threading.Event()

        def reloader():
            flip = False
            while not stop.is_set():
                reg.reload("default", other_path if flip else archive)
                flip = not flip

        with MicroBatchScheduler(
            reg, max_batch=4, max_wait_ms=5.0, queue_limit=256
        ) as sched:
            reload_thread = threading.Thread(target=reloader, daemon=True)
            reload_thread.start()
            try:
                with ThreadPoolExecutor(max_workers=8) as pool:
                    for response in pool.map(
                        sched.select, [n for n in TARGETS for _ in range(4)]
                    ):
                        with responses_lock:
                            responses.append(response)
            finally:
                stop.set()
                reload_thread.join(timeout=10)

        by_batch: dict[int, set[str]] = {}
        for response in responses:
            assert response.fingerprint in (fp_a, fp_b)
            expected = reference[response.fingerprint][
                response.recommendation.workload
            ]
            _assert_matches_reference(response.recommendation, expected)
            by_batch.setdefault(response.batch_id, set()).add(
                response.fingerprint
            )
        # One knowledge version per coalesced batch, always.
        assert all(len(fps) == 1 for fps in by_batch.values())


class TestHTTPFrontend:
    @pytest.fixture(scope="class")
    def running(self, request):
        selector = _fresh_selector()
        reg = SelectorRegistry()
        reg.register("default", selector)
        service = SelectionService(reg, max_wait_ms=5.0, queue_limit=64)
        server = serve(service, port=0)
        request.addfinalizer(server.close)
        host, port = server.address
        return selector, ServiceClient(host, port)

    def test_healthz(self, running):
        _, client = running
        health = client.healthz()
        assert health["status"] == "ok"
        assert "default" in health["selectors"]

    def test_select_payload_matches_library_selection(self, running, reference):
        _, client = running
        payload = client.select(TARGETS[0])
        expected = recommendation_to_dict(reference[(TARGETS[0], "time")])
        assert payload["recommendation"] == expected
        assert payload["model"]["selector"] == "default"
        assert payload["batch"]["size"] >= 1

    def test_budget_objective_over_http(self, running, reference):
        _, client = running
        payload = client.select(TARGETS[1], "budget")
        expected = recommendation_to_dict(reference[(TARGETS[1], "budget")])
        assert payload["recommendation"] == expected

    def test_concurrent_http_clients_stay_bit_identical(self, running, reference):
        _, client = running
        names = [n for n in TARGETS for _ in range(3)]
        with ThreadPoolExecutor(max_workers=9) as pool:
            payloads = list(pool.map(client.select, names))
        for name, payload in zip(names, payloads):
            assert payload["recommendation"] == recommendation_to_dict(
                reference[(name, "time")]
            )

    def test_statsz_exposes_serving_telemetry(self, running):
        _, client = running
        client.select(TARGETS[0])
        stats = client.statsz()
        sched = stats["schedulers"]["default"]
        assert sched["completed"] >= 1
        assert sched["queue_limit"] == 64
        assert set(sched["latency"]) >= {"count", "p50_ms", "p99_ms"}

    def test_error_mapping(self, running):
        from repro.errors import CatalogError

        _, client = running
        with pytest.raises(CatalogError) as excinfo:
            client.select("no-such-workload")
        # The wire message is the bare text, not a KeyError repr.
        assert excinfo.value.args[0] == "unknown workload 'no-such-workload'"
        with pytest.raises(ValidationError):
            client.select(TARGETS[0], "latency")
        with pytest.raises(ServiceError):
            client._request("GET", "/nope")

    def test_unknown_selector_is_a_client_error(self, running):
        _, client = running
        with pytest.raises(ValidationError):
            client.select(TARGETS[0], selector="other-model")


class TestDurationSummary:
    def test_percentiles_over_window(self):
        summary = DurationSummary(window=100)
        for ms in range(1, 101):
            summary.record(ms / 1e3)
        assert summary.count == 100
        assert summary.percentile(50) == pytest.approx(0.0505, abs=1e-3)
        snap = summary.snapshot()
        assert snap["count"] == 100
        assert snap["max_ms"] == pytest.approx(100.0)

    def test_window_rolls(self):
        summary = DurationSummary(window=4)
        for value in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            summary.record(value)
        assert summary.percentile(50) == pytest.approx(9.0)

    def test_empty_snapshot(self):
        assert DurationSummary().snapshot()["count"] == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            DurationSummary(window=0)
        with pytest.raises(ValidationError):
            DurationSummary().percentile(101)
