"""Tests for the low-latency serving path.

Covers the offline/online CMF split (``source_factors`` stage + exact
closed-form fold-in), the batched multi-target selection
(:meth:`VestaSelector.select_many`), the online prediction memoization,
and persistence of the new stage (round-trip + pre-split archives).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.cloud.pricing import budget_for_runtime
from repro.cloud.vmtypes import catalog
from repro.core.cmf import CMF, SourceFactors
from repro.core.persistence import load_selector, save_selector
from repro.core.vesta import VestaSelector
from repro.errors import ValidationError
from repro.workloads.catalog import target_set, training_set

SEED = 7
V1_ARCHIVE = Path(__file__).parent / "data" / "vesta_v1.npz"

#: The paper's near-best tolerance: a pick within 30% of the best
#: predicted score counts as near-best (tau = 0.3).  The full path's own
#: recommendations move within this band across CMF init seeds, so it is
#: the tightest defensible cross-mode agreement bound.
NEAR_BEST_BAND = 0.30


@pytest.fixture(scope="module")
def small_full():
    """Full-mode selector on a reduced grid (fast offline fit)."""
    return VestaSelector(
        vms=catalog()[:14], sources=training_set()[:6], seed=SEED
    ).fit()


def _foldin_copy(selector, path, **kwargs):
    """A fold-in twin of ``selector`` sharing its fitted knowledge.

    Save/load round-trips the stage artifacts, so the twin reuses the
    archived stages; cmf_mode is in no stage fingerprint, so the refit
    recomputes nothing.
    """
    save_selector(selector, path)
    return load_selector(path, **kwargs).refit(cmf_mode="foldin")


@pytest.fixture(scope="module")
def small_foldin(small_full, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "small.npz"
    return _foldin_copy(small_full, path)


@pytest.fixture(scope="module")
def foldin_vesta(fitted_vesta, tmp_path_factory):
    """Fold-in twin of the session-scoped full-catalog selector."""
    path = tmp_path_factory.mktemp("serving-full") / "vesta.npz"
    return _foldin_copy(fitted_vesta, path)


class TestFoldInSolver:
    """CMF.fold_in is an exact closed-form masked ridge solve."""

    def _problem(self, rows=3, labels=20, g=8, seed=0):
        rng = np.random.default_rng(seed)
        L = rng.normal(size=(labels, g))
        ustar = rng.uniform(size=(rows, labels))
        mask = (rng.uniform(size=(rows, labels)) < 0.4).astype(float)
        mask[:, 0] = 1.0  # at least one observed entry per row
        return L, ustar, mask

    def test_solves_the_normal_equations(self):
        cmf = CMF(latent_dim=8)
        L, ustar, mask = self._problem()
        astar = cmf.fold_in(L, ustar, mask)
        mu, reg = cmf.target_weight, cmf.reg
        for i in range(ustar.shape[0]):
            gram = mu * (L * mask[i][:, None]).T @ L + reg * np.eye(8)
            rhs = mu * L.T @ (mask[i] * ustar[i])
            np.testing.assert_allclose(gram @ astar[i], rhs, atol=1e-10)

    def test_batch_bit_identical_to_single_rows(self):
        cmf = CMF(latent_dim=8)
        L, ustar, mask = self._problem(rows=5)
        batched = cmf.fold_in(L, ustar, mask)
        singles = np.vstack(
            [
                cmf.fold_in(L, ustar[i : i + 1], mask[i : i + 1])
                for i in range(ustar.shape[0])
            ]
        )
        assert batched.tobytes() == singles.tobytes()

    def test_default_mask_means_fully_observed(self):
        cmf = CMF(latent_dim=8)
        L, ustar, _ = self._problem()
        full = cmf.fold_in(L, ustar, np.ones_like(ustar))
        assert cmf.fold_in(L, ustar).tobytes() == full.tobytes()

    def test_reproduces_a_joint_fit_row(self):
        """Folding a target row back in against the joint fit's own L
        recovers that fit's completed row (up to SGD residual)."""
        rng = np.random.default_rng(3)
        U = rng.uniform(size=(5, 12))
        V = rng.uniform(size=(6, 12))
        ustar = rng.uniform(size=(1, 12))
        mask = np.zeros_like(ustar)
        mask[0, :5] = 1.0
        cmf = CMF(latent_dim=4, seed=SEED)
        joint = cmf.fit(U, V, ustar, mask)
        assert joint.converged
        astar = cmf.fold_in(joint.L, ustar, mask)
        refolded = astar @ joint.L.T
        assert np.max(np.abs(refolded - joint.completed_ustar)) < 0.15

    def test_shape_validation(self):
        cmf = CMF(latent_dim=8)
        L, ustar, mask = self._problem()
        with pytest.raises(ValidationError):
            cmf.fold_in(L[:, :5], ustar, mask)  # wrong latent dim
        with pytest.raises(ValidationError):
            cmf.fold_in(L, ustar[:, :7], mask[:, :7])  # label mismatch
        with pytest.raises(ValidationError):
            cmf.fold_in(L, ustar, mask[:, :7])  # mask mismatch
        with pytest.raises(ValidationError):
            cmf.fold_in(L, ustar[0], None)  # 1-D rows


class TestSourceFactorsOffline:
    def test_factor_sources_converges_and_reconstructs(self, small_full):
        factors = small_full.source_factors
        assert isinstance(factors, SourceFactors)
        assert factors.converged
        g = small_full.latent_dim
        n_labels = small_full.label_space.n_labels
        assert factors.A.shape == (len(small_full.sources), g)
        assert factors.B.shape == (len(small_full.vms), g)
        assert factors.L.shape == (n_labels, g)
        rec_err = np.linalg.norm(
            small_full.U - factors.A @ factors.L.T
        ) / np.linalg.norm(small_full.U)
        assert rec_err < 0.5

    def test_als_objective_decreases_monotonically(self):
        rng = np.random.default_rng(0)
        U = rng.uniform(size=(6, 15))
        V = rng.uniform(size=(8, 15))
        cmf = CMF(latent_dim=4, max_epochs=50, tol=0.0)

        # Re-run the ALS objective trace by hand via successively tighter
        # iteration budgets: each prefix must not increase the objective.
        def objective(f):
            return (
                cmf.lam * ((U - f.A @ f.L.T) ** 2).sum()
                + (1 - cmf.lam) * ((V - f.B @ f.L.T) ** 2).sum()
                + cmf.reg
                * ((f.A**2).sum() + (f.B**2).sum() + (f.L**2).sum())
            )

        objs = []
        for epochs in (1, 2, 5, 10, 25):
            trial = CMF(latent_dim=4, max_epochs=epochs, tol=0.0, seed=0)
            objs.append(objective(trial.factor_sources(U, V)))
        assert all(b <= a + 1e-9 for a, b in zip(objs, objs[1:]))

    def test_foldin_without_fit_rejected(self):
        sel = VestaSelector(
            vms=catalog()[:8], sources=training_set()[:3], cmf_mode="foldin"
        )
        row = np.ones((1, 10))
        with pytest.raises(ValidationError, match="source_factors"):
            sel.complete_rows(row, row)

    def test_invalid_cmf_mode_rejected(self, small_full):
        with pytest.raises(ValidationError, match="cmf_mode"):
            VestaSelector(cmf_mode="blend")
        with pytest.raises(ValidationError, match="cmf_mode"):
            small_full.refit(cmf_mode="hybrid")

    def test_refit_to_foldin_recomputes_nothing(self, small_full):
        """cmf_mode is in no stage fingerprint: switching modes is free."""
        computed = small_full.campaign.counters.computed
        small_full.refit(cmf_mode="foldin")
        try:
            from repro.core.pipeline import CACHED_STAGES

            actions = {n: r.action for n, r in small_full.stage_report.items()}
            assert all(actions[n] == "memory" for n in CACHED_STAGES), actions
            assert small_full.campaign.counters.computed == computed
        finally:
            small_full.refit(cmf_mode="full")


class TestServingEquivalence:
    def test_small_grid_recommendations_identical(
        self, small_full, small_foldin
    ):
        for spec in target_set()[:4]:
            full_s = small_full.online(spec)
            fold_s = small_foldin.online(spec)
            assert full_s.observations == fold_s.observations
            assert full_s.converged == fold_s.converged
            assert full_s.degraded == fold_s.degraded
            for objective in ("time", "budget"):
                assert (
                    full_s.recommend(objective).vm_name
                    == fold_s.recommend(objective).vm_name
                ), (spec.name, objective)

    def test_full_catalog_near_best_agreement(self, fitted_vesta, foldin_vesta):
        """On the full Table-4 catalog the two modes agree within the
        near-best band: the fold-in pick's regret under the *full* model
        stays inside tau = 0.3, the bound within which the full path's
        own picks move across CMF init seeds."""
        for spec in target_set():
            full_s = fitted_vesta.online(spec)
            fold_s = foldin_vesta.online(spec)
            # The profiling half of the session is mode-independent.
            assert full_s.observations == fold_s.observations, spec.name
            assert full_s.degraded == fold_s.degraded
            assert full_s.converged == fold_s.converged, spec.name
            if not full_s.converged:
                continue  # both fell back to the same sparse row
            for objective, scores in (
                ("time", full_s.predict_runtimes()),
                ("budget", full_s.predict_budgets()),
            ):
                pick = foldin_vesta.vm_index(fold_s.recommend(objective).vm_name)
                best = float(scores.min())
                regret = (float(scores[pick]) - best) / best
                assert regret <= NEAR_BEST_BAND, (spec.name, objective, regret)


class TestSelectMany:
    def test_batch_matches_sequential_foldin(self, small_foldin):
        specs = target_set()[:5]
        batch = small_foldin.select_many(specs)
        sequential = tuple(small_foldin.select(s) for s in specs)
        for b, s in zip(batch, sequential):
            assert b.vm_name == s.vm_name
            assert b.predicted_runtime_s == s.predicted_runtime_s
            assert b.predicted_budget_usd == s.predicted_budget_usd
            assert b.predictions == s.predictions
            assert b.converged == s.converged

    def test_batch_matches_sequential_full_mode(self, small_full):
        specs = target_set()[:3]
        batch = small_full.select_many(specs)
        sequential = tuple(small_full.select(s) for s in specs)
        for b, s in zip(batch, sequential):
            assert b.vm_name == s.vm_name
            assert b.predictions == s.predictions

    def test_parallel_jobs_bit_identical(
        self, small_full, small_foldin, tmp_path_factory
    ):
        path = tmp_path_factory.mktemp("serving-jobs") / "small.npz"
        twin = _foldin_copy(small_full, path, jobs=2)
        specs = target_set()[:4]
        serial = small_foldin.select_many(specs, objective="budget")
        parallel = twin.select_many(specs, objective="budget")
        for a, b in zip(serial, parallel):
            assert a.vm_name == b.vm_name
            assert a.predictions == b.predictions

    def test_batch_objective_and_empty_batch(self, small_foldin):
        assert small_foldin.online_many(()) == ()
        assert small_foldin.select_many((), objective="budget") == ()

    def test_unfitted_rejected(self):
        sel = VestaSelector(vms=catalog()[:8], sources=training_set()[:3])
        with pytest.raises(ValidationError, match="not fitted"):
            sel.online_many(target_set()[:2])


class TestPredictionMemoization:
    @pytest.fixture()
    def session(self, small_foldin):
        return small_foldin.online(target_set()[0])

    @pytest.fixture()
    def predict_calls(self, small_foldin, monkeypatch):
        calls = []
        orig = small_foldin.predictor.predict

        def counting(*args, **kwargs):
            calls.append(1)
            return orig(*args, **kwargs)

        monkeypatch.setattr(small_foldin.predictor, "predict", counting)
        return calls

    def test_recommend_runs_one_prediction_pass(self, session, predict_calls):
        session.recommend("time")
        assert len(predict_calls) == 1
        # Budget scores derive from the memoized runtimes: still one pass.
        session.recommend("budget")
        assert len(predict_calls) == 1
        assert session.predict_runtimes() is session.predict_runtimes()

    def test_observe_invalidates_memo(self, session, predict_calls):
        before = session.predict_runtimes()
        unobserved = next(
            vm.name
            for vm in session._sel.vms
            if vm.name not in session.observations
        )
        measured = session.observe(unobserved)
        after = session.predict_runtimes()
        assert len(predict_calls) == 2
        assert after is not before
        idx = session._sel.vm_index(unobserved)
        assert after[idx] == measured

    def test_step_invalidates_memo(self, session, predict_calls):
        session.recommend("time")
        name, runtime = session.step("time")
        after = session.predict_runtimes()
        assert len(predict_calls) == 2
        assert after[session._sel.vm_index(name)] == runtime

    def test_prediction_vectors_are_readonly(self, session):
        assert not session.predict_runtimes().flags.writeable
        assert not session.predict_budgets().flags.writeable
        with pytest.raises(ValueError):
            session.predict_runtimes()[0] = 0.0

    def test_budget_vectorization_matches_scalar_billing(self, session):
        budgets = session.predict_budgets()
        runtimes = session.predict_runtimes()
        for i, vm in enumerate(session._sel.vms):
            scalar = budget_for_runtime(
                vm, float(runtimes[i]), nodes=session.spec.nodes
            )
            assert budgets[i] == scalar, vm.name


class TestServingPersistence:
    def test_roundtrip_preserves_source_factors(self, small_full, tmp_path):
        path = save_selector(small_full, tmp_path / "model.npz")
        loaded = load_selector(path)
        orig = small_full.source_factors
        assert loaded.cmf_mode == small_full.cmf_mode
        for name in ("A", "B", "L"):
            np.testing.assert_array_equal(
                getattr(loaded.source_factors, name), getattr(orig, name)
            )
        assert loaded.source_factors.converged == orig.converged

    def test_foldin_mode_survives_roundtrip(self, small_foldin, tmp_path):
        path = save_selector(small_foldin, tmp_path / "foldin.npz")
        loaded = load_selector(path)
        assert loaded.cmf_mode == "foldin"
        rec = loaded.select(target_set()[0])
        assert rec.vm_name == small_foldin.select(target_set()[0]).vm_name

    def test_v2_archive_without_factors_recomputes_them(
        self, small_full, tmp_path
    ):
        """A version-2 archive written before the offline/online split has
        no source_factors bundle (and no cmf_mode hyperparameter): loading
        derives the factors from the restored U/V."""
        import json

        path = save_selector(small_full, tmp_path / "pre_split.npz")
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {
                key: data[key]
                for key in data.files
                if key != "meta" and not key.startswith("source_factors.")
            }
        meta["hyperparams"].pop("cmf_mode")
        meta["stage_fingerprints"].pop("source_factors", None)
        stripped = tmp_path / "stripped.npz"
        np.savez_compressed(
            stripped,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        loaded = load_selector(stripped)
        assert loaded.cmf_mode == "full"  # constructor default fills the gap
        orig = small_full.source_factors
        for name in ("A", "B", "L"):
            np.testing.assert_array_equal(
                getattr(loaded.source_factors, name), getattr(orig, name)
            )
        loaded.refit(cmf_mode="foldin")
        rec = loaded.select(target_set()[1])
        assert rec.vm_name in {vm.name for vm in loaded.vms}

    def test_v1_archive_gets_derived_factors(self):
        sel = load_selector(V1_ARCHIVE)
        factors = sel.source_factors
        assert factors.A.shape == (len(sel.sources), sel.latent_dim)
        assert factors.L.shape == (sel.label_space.n_labels, sel.latent_dim)
        sel.refit(cmf_mode="foldin")
        row = np.ones((1, sel.label_space.n_labels))
        (result,) = sel.complete_rows(row, row)
        assert result.completed_ustar.shape == (1, sel.label_space.n_labels)
