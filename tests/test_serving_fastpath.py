"""Tests for the serving fast path (grouped fold-in + memo caches).

Three layers, each pinned bit-identical to the code path it replaces and
individually escape-hatchable:

- grouped, mask-keyed ``fold_in`` with a per-selector operator cache
  (``REPRO_FOLDIN_CACHE=0`` restores the per-row solve loop);
- the scheduler's recommendation memo cache keyed by
  ``(knowledge fingerprint, catalog fingerprint, workload, objective)``
  (``REPRO_REC_CACHE=0`` / ``rec_cache_size=0`` disables);
- the HTTP client's pooled keep-alive connections with transparent
  reconnect, plus the wire-level request canonicalization that makes
  semantically identical requests serialize identically.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.vmtypes import catalog
from repro.core.caching import LRUCache
from repro.core.cmf import CMF
from repro.core.persistence import load_selector, save_selector
from repro.core.vesta import Recommendation, VestaSelector
from repro.errors import DeadlineExceededError, ServiceError, ValidationError
from repro.service import (
    MicroBatchScheduler,
    SelectionService,
    SelectorRegistry,
    ServiceClient,
    ShardRouter,
    canonical_request,
    recommendation_to_dict,
    request_key,
)
from repro.service.server import serve
from repro.service.wire import catalog_to_dict, error_to_dict
from repro.telemetry.latency import DurationSummary
from repro.workloads.catalog import get_workload, target_set, training_set

SEED = 7
VMS = catalog()[:10]
SOURCES = training_set()[:5]
TARGETS = tuple(w.name for w in target_set()[:6])


@pytest.fixture(scope="module")
def foldin_selector():
    """One fitted fold-in selector shared by the serving-layer tests."""
    return VestaSelector(
        vms=VMS, sources=SOURCES, seed=SEED, cmf_mode="foldin"
    ).fit()


@pytest.fixture()
def registry(foldin_selector):
    reg = SelectorRegistry()
    reg.register("default", foldin_selector)
    return reg


def _rec_payload(response) -> str:
    return json.dumps(
        recommendation_to_dict(response.recommendation), sort_keys=True
    )


# -- layer 1: grouped fold-in ---------------------------------------------------


class TestGroupedFoldIn:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_rows=st.integers(1, 16),
        n_patterns=st.integers(1, 4),
        j=st.integers(4, 12),
        g=st.integers(2, 5),
    )
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_byte_identical_to_row_loop(self, seed, n_rows, n_patterns, j, g):
        """Grouped solves — cold cache, warm cache — vs the row loop."""
        rng = np.random.default_rng(seed)
        cmf = CMF(latent_dim=g)
        L = rng.normal(size=(j, g))
        rows = rng.normal(size=(n_rows, j))
        patterns = (rng.random((n_patterns, j)) > 0.4).astype(float)
        mask = patterns[rng.integers(0, n_patterns, size=n_rows)]

        loop = cmf._fold_in_row_loop(L, rows, mask)
        grouped = cmf.fold_in(L, rows, mask)
        cache = LRUCache(maxsize=16)
        cold = cmf.fold_in(L, rows, mask, operator_cache=cache)
        warm = cmf.fold_in(L, rows, mask, operator_cache=cache)

        assert grouped.tobytes() == loop.tobytes()
        assert cold.tobytes() == loop.tobytes()
        assert warm.tobytes() == loop.tobytes()
        stats = cache.stats()
        # Second pass resolves every distinct mask from the cache.
        assert stats["size"] == len({m.tobytes() for m in mask})
        assert stats["hits"] >= stats["size"]

    def test_env_gate_restores_row_loop(self, monkeypatch):
        """``REPRO_FOLDIN_CACHE=0`` must dispatch to the row loop only."""
        rng = np.random.default_rng(3)
        cmf = CMF(latent_dim=3)
        L = rng.normal(size=(6, 3))
        rows = rng.normal(size=(4, 6))
        mask = (rng.random((4, 6)) > 0.3).astype(float)
        expected = cmf.fold_in(L, rows, mask)

        monkeypatch.setenv("REPRO_FOLDIN_CACHE", "0")
        monkeypatch.setattr(
            CMF,
            "_fold_in_grouped",
            lambda *a, **k: pytest.fail("fast path taken with gate off"),
        )
        off = cmf.fold_in(L, rows, mask)
        assert off.tobytes() == expected.tobytes()

    def test_singular_gram_falls_back_to_lstsq(self):
        """Empty mask + reg=0: the gram is all zeros, ``solve`` raises,
        and both paths (and the cached-operator replay) must take the
        exact ``lstsq`` fallback the row loop takes."""
        g, j = 4, 8
        rng = np.random.default_rng(11)
        cmf = CMF(latent_dim=g, reg=0.0)
        L = rng.normal(size=(j, g))
        rows = rng.normal(size=(3, j))
        mask = np.vstack(
            [np.zeros(j), np.ones(j), np.zeros(j)]  # singular, fine, singular
        )

        loop = cmf._fold_in_row_loop(L, rows, mask)
        cache = LRUCache(maxsize=8)
        grouped = cmf.fold_in(L, rows, mask, operator_cache=cache)
        replay = cmf.fold_in(L, rows, mask, operator_cache=cache)

        assert grouped.tobytes() == loop.tobytes()
        assert replay.tobytes() == loop.tobytes()
        # The fallback rows really are the lstsq solution of the exact
        # singular system the math prescribes.
        gram = np.zeros((g, g))
        rhs = L.T @ (np.zeros(j) * rows[0])
        expected = np.linalg.lstsq(gram, rhs, rcond=None)[0]
        assert grouped[0].tobytes() == expected.tobytes()
        assert grouped[2].tobytes() == expected.tobytes()

    def test_rank_deficient_l_falls_back_to_lstsq(self):
        """Rank-deficient L (duplicated columns) + reg=0 under a full
        mask: singular gram on the non-degenerate code path too."""
        g, j = 4, 8
        rng = np.random.default_rng(12)
        cmf = CMF(latent_dim=g, reg=0.0)
        col = rng.normal(size=(j, 1))
        L = np.hstack([col] * g)  # rank 1
        rows = rng.normal(size=(2, j))
        mask = np.ones((2, j))

        loop = cmf._fold_in_row_loop(L, rows, mask)
        grouped = cmf.fold_in(L, rows, mask)
        assert grouped.tobytes() == loop.tobytes()
        weighted = L * mask[0][:, None]
        gram = cmf.target_weight * (weighted.T @ L) + cmf.reg * np.eye(g)
        with pytest.raises(np.linalg.LinAlgError):
            np.linalg.solve(gram, np.zeros(g))  # really singular

    def test_operator_cache_scoped_to_factors(self, foldin_selector):
        """Repeat waves hit the mask-keyed cache; a refit that changes
        the ``source_factors`` artifact starts from an empty cache."""
        specs = [get_workload(name) for name in TARGETS[:3]]
        first = foldin_selector.select_many(specs)
        warm_stats = foldin_selector.foldin_cache_stats()
        assert warm_stats is not None and warm_stats["size"] >= 1
        second = foldin_selector.select_many(specs)
        stats = foldin_selector.foldin_cache_stats()
        assert stats["hits"] > warm_stats["hits"]
        assert [r.vm_name for r in second] == [r.vm_name for r in first]
        assert [r.predictions for r in second] == [r.predictions for r in first]

        try:
            foldin_selector.refit(lam=0.8)
            foldin_selector.select_many(specs[:1])
            fresh = foldin_selector.foldin_cache_stats()
            # New factors object => new cache: no carried-over hits.
            assert fresh["hits"] < stats["hits"]
        finally:
            foldin_selector.refit(lam=0.75)


# -- layer 2: recommendation memo cache ----------------------------------------


class TestRecommendationMemoCache:
    def test_hit_is_byte_identical_to_cold_and_uncached(self, registry):
        with MicroBatchScheduler(registry, max_wait_ms=0.0) as sched:
            miss = sched.select(TARGETS[0])
            hit = sched.select(TARGETS[0])
            stats = sched.stats()
        with MicroBatchScheduler(registry, rec_cache_size=0) as uncached:
            plain = uncached.select(TARGETS[0])
            assert uncached.stats()["rec_cache"] is None

        assert not miss.cached and hit.cached and not plain.cached
        assert _rec_payload(hit) == _rec_payload(miss) == _rec_payload(plain)
        # The hit points back at the wave that computed the entry.
        assert hit.batch_id == miss.batch_id
        assert hit.fingerprint == miss.fingerprint
        assert stats["rec_cache"]["hits"] == 1
        assert stats["completed"] == 2
        assert stats["latency"]["count"] == 2
        assert sum(
            count * int(size)
            for size, count in stats["batch_size_histogram"].items()
        ) == 1

    def test_lru_bound_and_eviction_counters(self, registry):
        with MicroBatchScheduler(
            registry, max_wait_ms=0.0, rec_cache_size=1
        ) as sched:
            sched.select(TARGETS[0])
            sched.select(TARGETS[1])  # evicts TARGETS[0]
            third = sched.select(TARGETS[0])  # miss again
            stats = sched.stats()["rec_cache"]
        assert not third.cached
        assert stats == {
            "size": 1,
            "maxsize": 1,
            "hits": 0,
            "misses": 3,
            "evictions": 2,
        }

    def test_env_kill_switch(self, registry, monkeypatch):
        monkeypatch.setenv("REPRO_REC_CACHE", "0")
        with MicroBatchScheduler(registry, max_wait_ms=0.0) as sched:
            first = sched.select(TARGETS[0])
            second = sched.select(TARGETS[0])
            stats = sched.stats()
        assert stats["rec_cache"] is None
        assert not first.cached and not second.cached
        # Every request flowed through a wave: today's path exactly.
        assert sum(
            count * int(size)
            for size, count in stats["batch_size_histogram"].items()
        ) == 2

    def test_objective_is_part_of_the_key(self, registry):
        with MicroBatchScheduler(registry, max_wait_ms=0.0) as sched:
            time_rec = sched.select(TARGETS[0], "time")
            budget_rec = sched.select(TARGETS[0], "budget")
            assert not budget_rec.cached
            again = sched.select(TARGETS[0], "budget")
        assert again.cached
        assert time_rec.recommendation.objective == "time"
        assert again.recommendation.objective == "budget"

    def test_hot_reload_never_serves_the_old_fingerprint(
        self, foldin_selector, tmp_path
    ):
        """Reload to a new knowledge fingerprint mid-stream: the next
        request must be computed fresh under (and stamped with) the new
        fingerprint — the old version's entries are unreachable because
        the fingerprint is in the key."""
        archive_a = tmp_path / "a.npz"
        save_selector(foldin_selector, archive_a)
        variant = load_selector(archive_a).refit(k=5)
        archive_b = tmp_path / "b.npz"
        save_selector(variant, archive_b)

        reg = SelectorRegistry()
        handle_a = reg.load("default", archive_a)
        with MicroBatchScheduler(reg, max_wait_ms=0.0) as sched:
            warm = sched.select(TARGETS[0])
            assert sched.select(TARGETS[0]).cached  # cache is live
            handle_b, swapped = reg.reload("default", archive_b)
            assert swapped and handle_b.fingerprint != handle_a.fingerprint

            fresh = sched.select(TARGETS[0])
            assert not fresh.cached  # computed, not replayed
            assert fresh.fingerprint == handle_b.fingerprint
            assert fresh.generation == handle_b.generation

            replay = sched.select(TARGETS[0])
            assert replay.cached and replay.fingerprint == handle_b.fingerprint
            assert _rec_payload(replay) == _rec_payload(fresh)

            # Rolling back to version A re-keys straight onto A's still
            # cached entries — and serves exactly A's bytes again.
            reg.reload("default", archive_a)
            rollback = sched.select(TARGETS[0])
            assert rollback.cached
            assert rollback.fingerprint == handle_a.fingerprint
            assert _rec_payload(rollback) == _rec_payload(warm)

    def test_selector_double_without_catalog_is_served_uncached(self):
        """Stats/test doubles lacking catalog identity must flow through
        the normal path instead of crashing the key builder."""

        def _rec(name, objective):
            return Recommendation(
                workload=name,
                objective=objective,
                vm_name="stub-vm",
                predicted_runtime_s=1.0,
                predicted_budget_usd=2.0,
                reference_vm_count=1,
                converged=True,
                predictions={"stub-vm": 1.0},
            )

        class _Stub:
            def online_many(self, specs):
                return [
                    SimpleNamespace(
                        recommend=lambda objective, name=s.name: _rec(
                            name, objective
                        )
                    )
                    for s in specs
                ]

        handle = SimpleNamespace(
            name="default",
            selector=_Stub(),
            fingerprint="stub-fingerprint",
            generation=1,
            registered_at=0.0,
        )
        stub_registry = SimpleNamespace(get=lambda name: handle)
        with MicroBatchScheduler(stub_registry, max_wait_ms=0.0) as sched:
            first = sched.select(TARGETS[0])
            second = sched.select(TARGETS[0])
            stats = sched.stats()["rec_cache"]
        assert not first.cached and not second.cached
        assert stats["size"] == 0 and stats["hits"] == 0

    def test_sharded_fleet_aggregates_cache_counters(self, registry):
        with ShardRouter(registry, shards=2, max_wait_ms=0.0) as router:
            miss = router.select(TARGETS[0])
            hit = router.select(TARGETS[0])
            stats = router.stats()
        assert hit.cached and hit.shard == miss.shard
        assert _rec_payload(hit) == _rec_payload(miss)
        assert stats["rec_cache"]["hits"] == 1
        assert stats["rec_cache"]["maxsize"] == 2 * 512
        per_shard_hits = [row["rec_cache"]["hits"] for row in stats["per_shard"]]
        assert sum(per_shard_hits) == 1


# -- wire canonicalization ------------------------------------------------------


class TestWireCanonicalization:
    def test_round_trip_is_idempotent_and_order_free(self):
        scrambled = {
            "timeout_s": 5,
            "selector": "default",
            "objective": "budget",
            "workload": "spark-lr",
            "x-ignored": 1,
        }
        tidy = {
            "workload": "spark-lr",
            "objective": "budget",
            "selector": "default",
            "timeout_s": 5.0,
        }
        canonical = canonical_request(scrambled)
        assert canonical == tidy
        assert list(canonical) == ["workload", "objective", "selector", "timeout_s"]
        assert canonical_request(canonical) == canonical  # idempotent
        # Identical canonical form => identical serialized bytes.
        assert json.dumps(canonical) == json.dumps(canonical_request(tidy))

    def test_defaults_applied_and_key_ignores_timeout(self):
        assert canonical_request({"workload": "spark-lr"}) == {
            "workload": "spark-lr",
            "objective": "time",
        }
        base = request_key({"workload": "spark-lr"})
        assert base == request_key(
            {"timeout_s": 9, "objective": "time", "workload": "spark-lr"}
        )
        assert base != request_key(
            {"workload": "spark-lr", "objective": "budget"}
        )
        assert base != request_key(
            {"workload": "spark-lr", "selector": "other"}
        )

    def test_invalid_bodies_rejected(self):
        for bad in (
            [],
            {},
            {"workload": 7},
            {"workload": ""},
            {"workload": "spark-lr", "timeout_s": "soon"},
        ):
            with pytest.raises(ValidationError):
                canonical_request(bad)


# -- layer 3: client transport (and the stack end to end) ----------------------


@pytest.fixture()
def running(request, foldin_selector):
    reg = SelectorRegistry()
    reg.register("default", foldin_selector)
    service = SelectionService(reg, max_wait_ms=5.0, queue_limit=64)
    server = serve(service, port=0)
    request.addfinalizer(server.close)
    host, port = server.address
    return ServiceClient(host, port)


class TestClientTransport:
    def test_connection_reused_across_requests(self, running):
        client = running
        assert client.healthz()["status"] == "ok"
        conn = client._local.conn
        sock = conn.sock
        assert sock is not None
        client.statsz()
        client.select(TARGETS[0])
        assert client._local.conn is conn and conn.sock is sock

    def test_reconnects_after_connection_drop(self, running):
        client = running
        client.healthz()
        stale = client._local.conn
        stale.sock.close()  # server/kernel dropped us between requests
        payload = client.select(TARGETS[0])
        assert payload["recommendation"]["vm_name"]
        assert client._local.conn is not stale

    def test_close_then_reuse(self, running):
        client = running
        client.healthz()
        client.close()
        assert getattr(client._local, "conn", None) is None
        assert client.healthz()["status"] == "ok"

    def test_threads_do_not_share_connections(self, running):
        client = running
        client.healthz()
        seen = {}

        def probe():
            client.healthz()
            seen[threading.get_ident()] = client._local.conn

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join(timeout=30)
        (other_conn,) = seen.values()
        assert other_conn is not client._local.conn

    def test_spelling_variants_share_one_cache_entry(self, running):
        """Canonicalization end to end: the same request spelled three
        ways yields one wave plus two byte-identical cache hits."""
        client = running
        first = client.select(TARGETS[1])
        assert first["batch"]["cached"] is False
        explicit = client.select(TARGETS[1], "time")
        scrambled = client._request(
            "POST",
            "/select",
            {"timeout_s": 60, "objective": "time", "workload": TARGETS[1]},
        )
        assert explicit["batch"]["cached"] is True
        assert scrambled["batch"]["cached"] is True
        assert explicit["recommendation"] == first["recommendation"]
        assert scrambled["recommendation"] == first["recommendation"]
        stats = client.statsz()["schedulers"]["default"]
        assert stats["rec_cache"]["hits"] >= 2
        described = client.healthz()["selectors"]["default"]
        assert described["foldin_cache"] is None or (
            described["foldin_cache"]["size"] >= 0
        )


class TestServiceFrontendEdges:
    def test_sharded_service_caches_over_http(self, foldin_selector):
        """The ShardRouter-backed service build: HTTP hits land in the
        per-shard caches and surface in the fleet-aggregated stats."""
        reg = SelectorRegistry()
        reg.register("default", foldin_selector)
        with SelectionService(reg, max_wait_ms=0.0, shards=2) as service:
            server = serve(service, port=0)
            try:
                client = ServiceClient(*server.address)
                first = client.select(TARGETS[0])
                assert first["batch"]["cached"] is False
                repeat = client.select(TARGETS[0])
                assert repeat["batch"]["cached"] is True
                assert repeat["recommendation"] == first["recommendation"]
                stats = client.statsz()["schedulers"]["default"]
                assert stats["rec_cache"]["hits"] >= 1
            finally:
                server.close()

    def test_constructor_validation(self, registry):
        with pytest.raises(ValidationError):
            SelectionService(registry, shards=0)
        with pytest.raises(ValidationError):
            MicroBatchScheduler(registry, rec_cache_size=-1, start=False)

    def test_closed_service_refuses_requests(self, registry):
        service = SelectionService(registry, max_wait_ms=0.0)
        service.select(TARGETS[0]).recommendation
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceError):
            service.select(TARGETS[0])

    def test_http_error_paths_raise_typed_errors(self, running):
        client = running
        with pytest.raises(ServiceError):
            client._request("POST", "/nope", {"workload": TARGETS[0]})
        with pytest.raises(ServiceError):
            client._request("GET", "/nope")
        with pytest.raises(ValidationError):
            client._request("POST", "/select", {})
        with pytest.raises(ValidationError):
            client._request("POST", "/select", {"workload": ""})

    def test_invalid_json_body_is_a_400(self, running):
        conn = HTTPConnection(running.host, running.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/select",
                b"{not json",
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"] == "ValidationError"
        finally:
            conn.close()

    def test_served_catalogs_map(self, running):
        catalogs = running.served_catalogs()
        assert catalogs["default"]["catalog"]
        assert catalogs["default"]["catalog_fingerprint"]

    def test_deadline_error_round_trips(self, running):
        """A lapsed deadline comes back as the same typed exception the
        in-process scheduler raises, enforcement stage included."""
        with pytest.raises(DeadlineExceededError) as excinfo:
            running.select(TARGETS[2], timeout_s=1e-6)
        assert excinfo.value.stage in ("queued", "served", "shed")

    def test_connection_refused_propagates_after_retry(self):
        client = ServiceClient("127.0.0.1", 1)  # nothing listens here
        with pytest.raises(OSError):
            client.healthz()

    def test_wire_error_and_catalog_payloads(self, foldin_selector):
        deadline = error_to_dict(
            DeadlineExceededError(workload="w", waited_s=1.5, stage="queued")
        )
        assert deadline["error"] == "DeadlineExceededError"
        assert deadline["stage"] == "queued" and deadline["waited_s"] == 1.5
        identity = catalog_to_dict(foldin_selector.catalog)
        assert identity == {
            "catalog": foldin_selector.catalog.name,
            "catalog_fingerprint": foldin_selector.catalog.fingerprint(),
        }


class TestDurationSummaryReset:
    def test_reset_starts_a_fresh_window(self):
        summary = DurationSummary(window=8)
        for value in (0.1, 0.2, 0.3):
            summary.record(value)
        assert summary.count == 3
        summary.reset()
        assert summary.count == 0
        assert summary.snapshot() == {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }
        summary.record(0.5)
        assert summary.count == 1
        assert summary.snapshot()["p50_ms"] == 500.0
