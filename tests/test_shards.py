"""Tests for the sharded serving tier and the scheduler's backpressure.

Covers the shard router (workload-identity routing, multi-shard
bit-identity to sequential serving at mixed concurrency, hot-reload
version isolation, the process-pool backend over memmap bundles), the
scheduler's deadline enforcement at both ends of a wave, deadline-based
load-shedding under overload, the 429 retry hint on the wire, and the
thread safety of :class:`DurationSummary`.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cloud.vmtypes import catalog
from repro.core.persistence import save_selector
from repro.core.vesta import Recommendation, VestaSelector
from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.service import (
    MicroBatchScheduler,
    SelectionService,
    SelectorRegistry,
    ServiceClient,
    ShardRouter,
)
from repro.service.server import serve
from repro.service.shards import shard_for
from repro.telemetry.latency import DurationSummary
from repro.workloads.catalog import get_workload, target_set, training_set

SEED = 7
VMS = catalog()[:10]
SOURCES = training_set()[:5]
TARGETS = tuple(w.name for w in target_set()[:6])


def _fresh_selector(**kwargs) -> VestaSelector:
    return VestaSelector(vms=VMS, sources=SOURCES, seed=SEED, **kwargs).fit()


@pytest.fixture(scope="module")
def selector():
    return _fresh_selector()


@pytest.fixture(scope="module")
def reference():
    """Sequential ground truth: a twin selector serving one at a time."""
    ref = _fresh_selector()
    return {
        (name, objective): ref.select(get_workload(name), objective)
        for name in TARGETS
        for objective in ("time", "budget")
    }


@pytest.fixture()
def registry(selector):
    reg = SelectorRegistry()
    reg.register("default", selector)
    return reg


def _assert_matches_reference(payload_rec, expected) -> None:
    """Bit-level equality of a served recommendation with the sequential
    reference (exact float equality, full predictions vector)."""
    assert payload_rec.vm_name == expected.vm_name
    assert payload_rec.predicted_runtime_s == expected.predicted_runtime_s
    assert payload_rec.predicted_budget_usd == expected.predicted_budget_usd
    assert payload_rec.converged == expected.converged
    assert payload_rec.predictions == expected.predictions


class TestShardRouting:
    def test_shard_for_is_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for name in TARGETS:
                index = shard_for(name, shards)
                assert 0 <= index < shards
                assert index == shard_for(name, shards)  # deterministic

    def test_responses_come_from_the_routed_shard(self, registry, reference):
        with ShardRouter(registry, shards=4, max_wait_ms=1.0) as router:
            for name in TARGETS:
                response = router.select(name)
                assert response.shard == router.shard_for(name)
                _assert_matches_reference(
                    response.recommendation, reference[(name, "time")]
                )

    def test_single_shard_serves_the_live_handle(self, registry, selector):
        # K=1 inline is the unsharded scheduler: no replica indirection.
        with ShardRouter(registry, shards=1, max_wait_ms=1.0) as router:
            handle = router.shards[0].registry.get("default")
            assert handle.selector is selector


class TestShardBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("clients", [1, 8])
    def test_stream_equals_sequential(
        self, registry, reference, shards, clients
    ):
        requests = [
            (name, objective)
            for name in TARGETS
            for objective in ("time", "budget")
        ] * 2
        with ShardRouter(
            registry, shards=shards, max_batch=8, max_wait_ms=5.0,
            queue_limit=256,
        ) as router:
            with ThreadPoolExecutor(max_workers=clients) as pool:
                responses = list(
                    pool.map(lambda r: router.select(*r), requests)
                )
            stats = router.stats()
        for (name, objective), response in zip(requests, responses):
            _assert_matches_reference(
                response.recommendation, reference[(name, objective)]
            )
            assert response.fingerprint == registry.get("default").fingerprint
        assert stats["completed"] == len(requests)
        assert stats["rejected"] == 0 and stats["shed"] == 0
        assert stats["latency"]["count"] == len(requests)
        assert len(stats["per_shard"]) == shards
        served_shards = {response.shard for response in responses}
        assert served_shards == {
            shard_for(name, shards) for name, _ in requests
        }

    def test_pool_backend_equals_sequential(self, registry, reference):
        requests = [(name, "time") for name in TARGETS]
        with ShardRouter(
            registry, shards=2, pool=True, max_batch=4, max_wait_ms=2.0
        ) as router:
            responses = router.select_all([name for name, _ in requests])
            # A second pass hits the workers' cached replicas.
            repeat = router.select_all([name for name, _ in requests])
            stats = router.stats()
        for (name, objective), response in zip(requests, responses):
            _assert_matches_reference(
                response.recommendation, reference[(name, objective)]
            )
        for (name, objective), response in zip(requests, repeat):
            _assert_matches_reference(
                response.recommendation, reference[(name, objective)]
            )
        assert stats["pool"] is True
        for row in stats["per_shard"]:
            assert row["backend"]["name"] == "pool"


class TestShardHotReload:
    def test_no_version_mixing_mid_stream(self, selector, tmp_path):
        """Concurrent selects through 2 shards during repeated
        hot-reloads: every response comes from exactly one knowledge
        version and matches that version's own sequential answer."""
        other = _fresh_selector(k=5)
        archive_a = tmp_path / "a.npz"
        archive_b = tmp_path / "b.npz"
        save_selector(selector, archive_a)
        save_selector(other, archive_b)

        reg = SelectorRegistry()
        reg.load("default", archive_a)
        fp_a = reg.get("default").fingerprint
        fp_b = other.knowledge_fingerprint()
        assert fp_a != fp_b

        ref_a, ref_b = _fresh_selector(), _fresh_selector(k=5)
        reference = {
            fp_a: {n: ref_a.select(get_workload(n)) for n in TARGETS},
            fp_b: {n: ref_b.select(get_workload(n)) for n in TARGETS},
        }

        stop = threading.Event()

        def reloader():
            flip = False
            while not stop.is_set():
                reg.reload("default", archive_b if flip else archive_a)
                flip = not flip

        with ShardRouter(
            reg, shards=2, max_batch=4, max_wait_ms=5.0, queue_limit=256
        ) as router:
            reload_thread = threading.Thread(target=reloader, daemon=True)
            reload_thread.start()
            try:
                with ThreadPoolExecutor(max_workers=8) as pool:
                    responses = list(pool.map(
                        router.select, [n for n in TARGETS for _ in range(4)]
                    ))
            finally:
                stop.set()
                reload_thread.join(timeout=10)

        by_batch: dict[tuple[int, int], set[str]] = {}
        for response in responses:
            assert response.fingerprint in (fp_a, fp_b)
            expected = reference[response.fingerprint][
                response.recommendation.workload
            ]
            _assert_matches_reference(response.recommendation, expected)
            by_batch.setdefault(
                (response.shard, response.batch_id), set()
            ).add(response.fingerprint)
        # One knowledge version per coalesced batch, on every shard.
        assert all(len(fps) == 1 for fps in by_batch.values())


def _fake_recommendation(name: str, objective: str = "time") -> Recommendation:
    return Recommendation(
        workload=name,
        objective=objective,
        vm_name="stub-vm",
        predicted_runtime_s=1.0,
        predicted_budget_usd=2.0,
        reference_vm_count=1,
        converged=True,
        predictions={"stub-vm": 1.0},
    )


class _StubSelector:
    """Selector double whose waves take a configurable time.

    ``entered`` is set when a wave starts (tests sequence on it) and
    ``gate``, when given, blocks the wave until released.
    """

    def __init__(self, delay_s: float = 0.0, gate: threading.Event | None = None):
        self.delay_s = delay_s
        self.gate = gate
        self.entered = threading.Event()

    def online_many(self, specs):
        self.entered.set()
        if self.gate is not None:
            self.gate.wait(timeout=30)
        if self.delay_s:
            time.sleep(self.delay_s)
        return [
            SimpleNamespace(
                recommend=lambda objective, name=s.name: _fake_recommendation(
                    name, objective
                )
            )
            for s in specs
        ]


def _stub_registry(selector) -> SimpleNamespace:
    handle = SimpleNamespace(
        name="default",
        selector=selector,
        fingerprint="stub-fingerprint",
        generation=1,
        registered_at=0.0,
    )
    return SimpleNamespace(
        get=lambda name: handle,
        describe=lambda: {"default": {"fingerprint": handle.fingerprint}},
        names=lambda: ("default",),
    )


class TestDeadlineEnforcement:
    def test_deadline_lapsing_during_the_wave_returns_error(self):
        """A request whose deadline lapses *during* batch execution must
        get DeadlineExceededError, not the stale (too late) answer."""
        registry = _stub_registry(_StubSelector(delay_s=0.3))
        spec = get_workload(TARGETS[0])
        with MicroBatchScheduler(
            registry, max_batch=4, max_wait_ms=1.0, queue_limit=8
        ) as sched:
            doomed = sched.submit(spec, timeout_s=0.05)
            fine = sched.submit(spec)
            with pytest.raises(DeadlineExceededError) as excinfo:
                doomed.result(timeout=10)
            assert excinfo.value.stage == "served"
            assert excinfo.value.waited_s >= 0.05
            # The co-traveller without a deadline still gets its answer.
            assert fine.result(timeout=10).recommendation.vm_name == "stub-vm"
            stats = sched.stats()
        assert stats["expired"] == 1
        assert stats["completed"] == 1

    def test_overload_sheds_doomed_queued_requests_first(self, registry):
        spec = get_workload(TARGETS[0])
        sched = MicroBatchScheduler(
            registry, max_batch=1, queue_limit=2, start=False
        )
        doomed = [sched.submit(spec, timeout_s=0.0) for _ in range(2)]
        time.sleep(0.01)  # let the zero deadlines lapse
        # Queue is full, but both queued requests are past their
        # deadline: shedding frees their slots and this one is admitted.
        admitted = sched.submit(spec)
        for future in doomed:
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result(timeout=1)
            assert excinfo.value.stage == "shed"
        assert not admitted.done()
        stats = sched.stats()
        assert stats["shed"] == 2
        assert stats["rejected"] == 0
        assert stats["queue_depth"] == 1
        sched.close()

    def test_unmeetable_incoming_deadline_is_shed_not_queued(self, registry):
        spec = get_workload(TARGETS[0])
        sched = MicroBatchScheduler(
            registry, max_batch=1, queue_limit=2, start=False
        )
        for _ in range(2):
            sched.submit(spec)  # no deadlines: nothing is sheddable
        with sched._stats_lock:
            sched._service_ewma_s = 5.0  # measured: ~5s per wave
        # Two waves ahead at ~5s each can never make a 100ms deadline.
        with pytest.raises(DeadlineExceededError) as excinfo:
            sched.submit(spec, timeout_s=0.1)
        assert excinfo.value.stage == "shed"
        assert sched.stats()["shed"] == 1
        sched.close()

    def test_overload_rejection_carries_queue_context(self, registry):
        spec = get_workload(TARGETS[0])
        sched = MicroBatchScheduler(
            registry, max_batch=1, queue_limit=2, start=False
        )
        for _ in range(2):
            sched.submit(spec)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            sched.submit(spec)  # no deadline: nothing to shed, reject
        assert excinfo.value.queue_limit == 2
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.retry_after_s > 0
        sched.close()


class TestRetryAfterOnTheWire:
    @pytest.fixture()
    def overloaded(self, request):
        """A served stub whose single worker is parked mid-wave and whose
        queue (limit 1) is full — the next request must get a 429."""
        gate = threading.Event()
        stub = _StubSelector(gate=gate)
        service = SelectionService(
            _stub_registry(stub), max_batch=1, max_wait_ms=0.0, queue_limit=1
        )
        server = serve(service, port=0)
        request.addfinalizer(server.close)
        request.addfinalizer(gate.set)
        host, port = server.address
        client = ServiceClient(host, port)
        pool = ThreadPoolExecutor(max_workers=2)
        request.addfinalizer(lambda: pool.shutdown(wait=False))
        in_flight = [pool.submit(client.select, TARGETS[0])]
        assert stub.entered.wait(timeout=10)  # worker parked on wave 1
        in_flight.append(pool.submit(client.select, TARGETS[0]))
        sched = service.scheduler()
        deadline = time.monotonic() + 10
        while sched.queue_depth < 1:  # request 2 occupies the queue
            assert time.monotonic() < deadline
            time.sleep(0.005)
        return SimpleNamespace(
            host=host, port=port, client=client, gate=gate,
            in_flight=in_flight,
        )

    def test_429_body_and_header(self, overloaded):
        conn = HTTPConnection(overloaded.host, overloaded.port, timeout=10)
        try:
            conn.request(
                "POST", "/select",
                body=json.dumps({"workload": TARGETS[0]}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read().decode())
        finally:
            conn.close()
        assert response.status == 429
        assert int(response.getheader("Retry-After")) >= 1
        assert body["error"] == "ServiceOverloadedError"
        assert body["queue_limit"] == 1
        assert body["queue_depth"] == 1
        assert body["retry_after_s"] > 0

    def test_client_rebuilds_typed_overload_error(self, overloaded):
        with pytest.raises(ServiceOverloadedError) as excinfo:
            overloaded.client.select(TARGETS[0])
        assert excinfo.value.queue_limit == 1
        assert excinfo.value.queue_depth == 1
        assert excinfo.value.retry_after_s > 0
        overloaded.gate.set()
        for future in overloaded.in_flight:
            payload = future.result(timeout=10)
            assert payload["recommendation"]["vm_name"] == "stub-vm"
            assert "shard" in payload["batch"]


class TestDurationSummaryConcurrency:
    def test_concurrent_recording_loses_nothing(self):
        """Regression: unlocked ``record`` raced ``snapshot`` — a reader
        mid-wrap could mix a fresh sample into the stale tail, and
        concurrent writers could lose count increments."""
        summary = DurationSummary(window=64)
        writers, per_writer = 4, 5000
        failures: list[dict] = []
        done = threading.Event()

        def write():
            for _ in range(per_writer):
                summary.record(1.0)

        def read():
            while not done.is_set():
                snap = summary.snapshot()
                # Every recorded sample is 1.0: any other value in a
                # snapshot means it saw a slot the count didn't cover.
                if snap["count"] and snap["mean_ms"] != 1000.0:
                    failures.append(snap)

        threads = [threading.Thread(target=write) for _ in range(writers)]
        reader = threading.Thread(target=read)
        reader.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        done.set()
        reader.join()
        assert not failures
        assert summary.count == writers * per_writer
        assert summary.snapshot()["count"] == writers * per_writer

    def test_aggregate_merges_windows(self):
        a, b = DurationSummary(), DurationSummary()
        for value in (0.010, 0.020, 0.030):
            a.record(value)
        b.record(0.100)
        merged = DurationSummary.aggregate([a, b])
        union = np.array([0.010, 0.020, 0.030, 0.100])
        assert merged["count"] == 4
        assert merged["max_ms"] == 100.0
        assert merged["p50_ms"] == round(float(np.percentile(union, 50)) * 1e3, 3)
        assert merged["p99_ms"] == round(float(np.percentile(union, 99)) * 1e3, 3)

    def test_aggregate_of_empty_summaries(self):
        assert DurationSummary.aggregate([DurationSummary()])["count"] == 0
