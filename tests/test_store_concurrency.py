"""Multi-threaded access to the sqlite-backed stores.

The serving subsystem shares one :class:`MetricsStore` /
:class:`ArtifactStore` between the thread that constructed the selector
and the scheduler worker (plus HTTP handler threads reading stats), so
both stores must tolerate cross-thread use and concurrent readers.
Before the hardening, any call from a non-constructor thread raised
``sqlite3.ProgrammingError`` (connections default to
``check_same_thread=True``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.artifacts import ArtifactStore
from repro.telemetry.collector import WorkloadProfile
from repro.telemetry.store import MetricsStore, SessionRecord


def _session(workload: str, *, vms: int = 4, seed: int = 0) -> SessionRecord:
    rng = np.random.default_rng(seed)
    return SessionRecord(
        workload=workload,
        objective="time",
        fingerprint="fp-test",
        converged=True,
        degraded=False,
        knowledge_match=0.9,
        vm_names=tuple(f"vm-{i}" for i in range(vms)),
        observed=rng.uniform(10.0, 100.0, size=vms),
        completed_row=rng.uniform(size=6),
        predicted=rng.uniform(10.0, 100.0, size=10),
    )


def _profile(workload: str, vm_name: str, nodes: int = 2, seed: int = 0):
    rng = np.random.default_rng(seed)
    return WorkloadProfile(
        workload=workload,
        framework="spark",
        vm_name=vm_name,
        nodes=nodes,
        runtimes=rng.uniform(10.0, 100.0, size=3),
        budgets=rng.uniform(0.1, 1.0, size=3),
        timeseries=rng.uniform(0.0, 1.0, size=(30, 20)),
        spilled=False,
    )


def _run_threads(workers, *, count: int = 8):
    """Run ``workers`` (callables taking a thread index) concurrently,
    re-raising the first exception from any thread."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(count)

    def wrap(fn, idx):
        try:
            barrier.wait(timeout=30)
            fn(idx)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(workers[i % len(workers)], i))
        for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    if errors:
        raise errors[0]


class TestMetricsStoreConcurrency:
    def test_cross_thread_use(self, tmp_path):
        """A store built on one thread serves puts/gets from another."""
        store = MetricsStore(str(tmp_path / "m.db"))

        def use(_):
            store.put(_profile("wl-x", "vm-x"))
            assert store.get("wl-x", "vm-x", 2) is not None

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(use, 0).result(timeout=30)
        store.close()

    def test_concurrent_readers_and_writer(self, tmp_path):
        store = MetricsStore(str(tmp_path / "m.db"), wal=True)
        for i in range(4):
            store.put(_profile("wl-seed", f"vm-{i}", seed=i))

        def writer(idx):
            for j in range(20):
                store.put(_profile(f"wl-{idx}", f"vm-{j % 5}", seed=j))

        def reader(_):
            for _ in range(40):
                profiles = store.profiles_for_workload("wl-seed")
                assert len(profiles) == 4
                assert store.get("wl-seed", "vm-0", 2).workload == "wl-seed"
                assert len(store) >= 4
                store.workloads()
                store.vm_names()

        _run_threads([writer, reader, reader, reader], count=8)
        assert len(store.profiles_for_workload("wl-seed")) == 4
        store.close()

    def test_concurrent_bulk_writers_serialize(self, tmp_path):
        """Two bulk transactions from different threads cannot interleave;
        both land completely."""
        store = MetricsStore(str(tmp_path / "m.db"))

        def bulk_writer(idx):
            with store.bulk() as tx:
                for j in range(10):
                    tx.put(_profile(f"wl-bulk-{idx}", f"vm-{j}", seed=j))

        _run_threads([bulk_writer], count=4)
        assert len(store) == 4 * 10
        store.close()

    def test_concurrent_cache_access(self, tmp_path):
        store = MetricsStore(str(tmp_path / "m.db"))

        def cacher(idx):
            for j in range(15):
                key = f"k-{idx}-{j}"
                store.put_cached(key, "fp-1", _profile("wl-c", f"vm-{j}"))
                store.put_cached_scalar(f"s-{key}", "fp-1", float(j))
                assert store.get_cached(key) is not None
                assert store.get_cached_scalar(f"s-{key}") == float(j)
                store.cache_counts()

        _run_threads([cacher], count=6)
        profiles, scalars = store.cache_counts()
        assert profiles == 6 * 15 and scalars == 6 * 15
        assert store.prune_cache("fp-1") == 0
        store.close()


class TestSessionLogRetention:
    """Bounded session journal: deterministic oldest-first eviction even
    under concurrent writers (the serving fleet journals from every
    shard's worker thread through one shared store)."""

    def test_roundtrip_preserves_record(self, tmp_path):
        store = MetricsStore(str(tmp_path / "m.db"))
        record = _session("wl-rt", seed=3)
        seq = store.log_session(record)
        (back,) = store.sessions("wl-rt")
        assert back.seq == seq
        assert back.workload == record.workload
        assert back.fingerprint == record.fingerprint
        assert back.vm_names == record.vm_names
        np.testing.assert_array_equal(back.observed, record.observed)
        np.testing.assert_array_equal(back.completed_row, record.completed_row)
        np.testing.assert_array_equal(back.predicted, record.predicted)
        store.close()

    def test_limit_bounds_rows_oldest_first(self, tmp_path):
        store = MetricsStore(str(tmp_path / "m.db"))
        for i in range(10):
            store.log_session(_session(f"wl-{i}", seed=i), limit=4)
        assert store.session_count() == 4
        kept = [r.workload for r in store.sessions()]
        assert kept == [f"wl-{i}" for i in range(6, 10)]
        store.close()

    def test_prune_sessions_returns_removed(self, tmp_path):
        store = MetricsStore(str(tmp_path / "m.db"))
        for i in range(8):
            store.log_session(_session(f"wl-{i}", seed=i))
        assert store.prune_sessions(keep=3) == 5
        assert [r.workload for r in store.sessions()] == ["wl-5", "wl-6", "wl-7"]
        assert store.prune_sessions(keep=3) == 0  # idempotent
        store.close()

    def test_invalid_bounds_rejected(self, tmp_path):
        from repro.errors import ValidationError

        store = MetricsStore(str(tmp_path / "m.db"))
        with pytest.raises(ValidationError):
            store.log_session(_session("wl"), limit=0)
        with pytest.raises(ValidationError):
            store.prune_sessions(keep=-1)
        bad = _session("wl")
        object.__setattr__(bad, "observed", np.zeros(99))
        with pytest.raises(ValidationError):
            store.log_session(bad)
        store.close()

    def test_concurrent_journal_writers_stay_bounded(self, tmp_path):
        store = MetricsStore(str(tmp_path / "m.db"), wal=True)
        limit = 16

        def journaller(idx):
            for j in range(25):
                store.log_session(_session(f"wl-{idx}-{j}", seed=j), limit=limit)

        def reader(_):
            for _ in range(40):
                assert store.session_count() <= limit
                for record in store.sessions():
                    assert record.observed.shape == (4,)

        _run_threads([journaller, journaller, reader, reader], count=8)
        assert store.session_count() == limit
        # Retention kept exactly the newest ``limit`` rows by seq.
        seqs = [r.seq for r in store.sessions()]
        assert seqs == sorted(seqs)
        assert len(seqs) == limit
        assert seqs[-1] - seqs[0] == limit - 1
        store.close()


class TestArtifactStoreConcurrency:
    def test_cross_thread_use(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.db")

        def use(_):
            store.put("k-x", "stage", {"a": np.arange(4.0)}, {"m": 1})
            hit = store.get("k-x")
            assert hit is not None and hit.meta == {"m": 1}

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(use, 0).result(timeout=30)
        store.close()

    def test_concurrent_put_get(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.db")
        rng = np.random.default_rng(3)
        payloads = {f"k-{i}": rng.uniform(size=(8, 8)) for i in range(12)}
        for key, arr in payloads.items():
            store.put(key, "warm", {"w": arr})

        def writer(idx):
            for j in range(10):
                store.put(f"w-{idx}-{j}", "stage", {"x": np.full(16, float(j))})

        def reader(_):
            for key, arr in payloads.items():
                hit = store.get(key)
                assert hit is not None
                np.testing.assert_array_equal(hit.arrays["w"], arr)
            assert len(store) >= len(payloads)
            store.entries("warm")

        _run_threads([writer, reader, reader, reader], count=8)
        assert len(store.entries("warm")) == len(payloads)
        store.close()

    def test_concurrent_invalidate_is_safe(self, tmp_path):
        store = ArtifactStore(tmp_path / "a.db")
        for i in range(20):
            store.put(f"k-{i}", "doomed", {"x": np.zeros(4)})

        def invalidator(_):
            store.invalidate("doomed")

        def reader(_):
            for i in range(20):
                store.get(f"k-{i}")  # hit or miss, never an exception

        _run_threads([invalidator, reader, reader, reader], count=8)
        assert len(store.entries("doomed")) == 0
        store.close()


def test_metrics_store_rejects_bad_series(tmp_path):
    """Validation still fires when called off-thread."""
    store = MetricsStore(str(tmp_path / "m.db"))
    bad = _profile("wl", "vm")
    object.__setattr__(bad, "timeseries", np.zeros((30, 7)))

    def use(_):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            store.put(bad)

    with ThreadPoolExecutor(max_workers=1) as pool:
        pool.submit(use, 0).result(timeout=30)
    store.close()
