"""Tests for metrics, the Data Collector, and the metrics store."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.frameworks.registry import get_engine, simulate_run
from repro.frameworks.resources import MAX_SAMPLES, build_timeseries
from repro.cloud.cluster import Cluster
from repro.cloud.vmtypes import get_vm_type
from repro.telemetry.collector import DataCollector, WorkloadProfile
from repro.telemetry.metrics import (
    EXECUTION_METRICS,
    METRIC_INDEX,
    METRIC_NAMES,
    NUM_METRICS,
    RESOURCE_METRICS,
    metric_column,
)
from repro.telemetry.store import MetricsStore
from repro.workloads.catalog import get_workload


class TestMetricDefinitions:
    def test_twenty_metrics(self):
        assert NUM_METRICS == 20
        assert len(METRIC_NAMES) == 20

    def test_paper_enumerated_metrics_present(self):
        # Section 3.1's explicit list.
        explicit = {
            "cpu_system", "cpu_user", "cpu_idle",
            "mem_used", "mem_buffer", "mem_cache",
            "disk_read", "disk_write",
            "net_send", "net_recv", "net_drop",
            "tasks_compute", "tasks_communication", "tasks_synchronization",
            "data_per_cycle", "data_per_iteration", "data_per_parallelism",
        }
        assert explicit <= set(METRIC_NAMES)

    def test_partition_resource_execution(self):
        assert set(RESOURCE_METRICS) | set(EXECUTION_METRICS) == set(METRIC_NAMES)
        assert not set(RESOURCE_METRICS) & set(EXECUTION_METRICS)

    def test_metric_column_lookup(self):
        assert metric_column("cpu_user") == METRIC_INDEX["cpu_user"]
        with pytest.raises(KeyError):
            metric_column("gpu_util")


class TestTimeseries:
    def test_shape_and_nonnegativity(self, spark_lr, small_cluster, rng):
        phases = get_engine("spark").plan(spark_lr, small_cluster)
        from repro.frameworks.base import BSPScheduler

        results = [BSPScheduler().simulate_phase(p, small_cluster) for p in phases]
        series = build_timeseries(results, spark_lr, small_cluster, rng=rng)
        assert series.shape[1] == NUM_METRICS
        assert np.all(series >= 0)

    def test_fraction_metrics_bounded(self, spark_lr, rng):
        r = simulate_run(spark_lr, "m5.xlarge", rng=rng)
        for name in ("cpu_user", "cpu_idle", "mem_used", "disk_util", "net_drop"):
            col = r.timeseries[:, METRIC_INDEX[name]]
            assert np.all(col <= 1.0 + 1e-9), name

    def test_sample_cap_enforced(self, hadoop_terasort):
        r = simulate_run(hadoop_terasort, "t3a.small", sample_period_s=0.01)
        assert r.timeseries.shape[0] <= MAX_SAMPLES + 64  # one block per phase

    def test_sample_count_tracks_runtime(self, spark_lr):
        r = simulate_run(spark_lr, "m5.xlarge", sample_period_s=5.0)
        expected = r.base_runtime_s / 5.0
        assert r.timeseries.shape[0] == pytest.approx(expected, rel=0.5)

    def test_invalid_period_rejected(self, spark_lr, small_cluster):
        with pytest.raises(ValidationError):
            build_timeseries([], spark_lr, small_cluster, sample_period_s=0.0)

    def test_empty_phases_give_empty_series(self, spark_lr, small_cluster):
        series = build_timeseries([], spark_lr, small_cluster)
        assert series.shape == (0, NUM_METRICS)

    def test_compute_phase_shows_cpu_activity(self, spark_lr):
        r = simulate_run(spark_lr, "c5.xlarge")
        cpu = r.timeseries[:, METRIC_INDEX["cpu_user"]]
        assert cpu.max() > 0.3


class TestDataCollector:
    def test_profile_shape(self, spark_lr):
        dc = DataCollector(repetitions=5, seed=1)
        p = dc.collect(spark_lr, "m5.xlarge")
        assert isinstance(p, WorkloadProfile)
        assert p.runtimes.shape == (5,)
        assert p.budgets.shape == (5,)
        assert p.timeseries.shape[1] == NUM_METRICS

    def test_p90_is_conservative(self, spark_lr):
        p = DataCollector(repetitions=10, seed=1).collect(spark_lr, "m5.xlarge")
        assert p.runtime_p90 >= np.median(p.runtimes)

    def test_reproducible_across_instances(self, spark_lr):
        a = DataCollector(repetitions=5, seed=3).collect(spark_lr, "m5.xlarge")
        b = DataCollector(repetitions=5, seed=3).collect(spark_lr, "m5.xlarge")
        np.testing.assert_array_equal(a.runtimes, b.runtimes)

    def test_order_independent_streams(self, spark_lr, hadoop_terasort):
        dc1 = DataCollector(repetitions=3, seed=3)
        dc1.collect(hadoop_terasort, "c5.large")
        after = dc1.collect(spark_lr, "m5.xlarge")
        fresh = DataCollector(repetitions=3, seed=3).collect(spark_lr, "m5.xlarge")
        np.testing.assert_array_equal(after.runtimes, fresh.runtimes)

    def test_runtime_only_matches_collect_p90(self, spark_lr):
        dc = DataCollector(repetitions=10, seed=4)
        fast = dc.runtime_only(spark_lr, "m5.xlarge")
        full = dc.collect(spark_lr, "m5.xlarge").runtime_p90
        assert fast == pytest.approx(full, rel=0.02)

    def test_svdpp_high_variance(self):
        dc = DataCollector(repetitions=10, seed=5)
        lr = dc.collect(get_workload("spark-lr"), "m5.xlarge")
        svd = dc.collect(get_workload("spark-svd++"), "m5.xlarge")
        assert svd.runtime_cv > 3 * lr.runtime_cv

    def test_invalid_repetitions(self):
        with pytest.raises(ValidationError):
            DataCollector(repetitions=0)


class TestMetricsStore:
    @pytest.fixture()
    def profile(self, spark_lr):
        return DataCollector(repetitions=3, seed=1).collect(spark_lr, "m5.xlarge")

    def test_roundtrip(self, profile):
        with MetricsStore() as store:
            store.put(profile)
            back = store.get("spark-lr", "m5.xlarge", nodes=profile.nodes)
        assert back is not None
        np.testing.assert_array_equal(back.runtimes, profile.runtimes)
        np.testing.assert_array_equal(back.timeseries, profile.timeseries)
        assert back.framework == profile.framework
        assert back.spilled == profile.spilled

    def test_missing_returns_none(self, spark_lr):
        with MetricsStore() as store:
            assert store.get("spark-lr", "m5.xlarge", nodes=spark_lr.nodes) is None

    def test_replace_on_same_key(self, profile, spark_lr):
        with MetricsStore() as store:
            store.put(profile)
            store.put(profile)
            assert len(store) == 1

    def test_listing(self, profile, hadoop_terasort):
        other = DataCollector(repetitions=2, seed=2).collect(hadoop_terasort, "c5.large")
        with MetricsStore() as store:
            store.put(profile)
            store.put(other)
            assert store.workloads() == ["hadoop-terasort", "spark-lr"]
            assert store.vm_names() == ["c5.large", "m5.xlarge"]
            assert len(store.profiles_for_workload("spark-lr")) == 1

    def test_bulk_context(self, profile):
        with MetricsStore() as store:
            with store.bulk():
                store.put(profile)
            assert len(store) == 1

    def test_file_backed_persistence(self, profile, tmp_path):
        path = str(tmp_path / "runs.sqlite")
        store = MetricsStore(path)
        store.put(profile)
        store.close()
        reopened = MetricsStore(path)
        assert reopened.get("spark-lr", "m5.xlarge", nodes=profile.nodes) is not None
        reopened.close()

    def test_bad_series_shape_rejected(self, profile):
        import dataclasses

        broken = dataclasses.replace(profile, timeseries=np.zeros((4, 3)))
        with MetricsStore() as store:
            with pytest.raises(ValidationError):
                store.put(broken)
