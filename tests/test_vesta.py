"""Tests for the end-to-end VestaSelector (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.vesta import OnlineSession, Recommendation, VestaSelector
from repro.errors import ValidationError
from repro.workloads.catalog import get_workload, training_set


class TestOfflineFit:
    def test_fit_builds_knowledge(self, fitted_vesta):
        v = fitted_vesta
        n_src, n_vm = len(v.sources), len(v.vms)
        assert v.perf.shape == (n_src, n_vm)
        assert np.all(v.perf > 0)
        assert v.correlations.shape == (n_src, 10)
        assert v.U.shape == (n_src, v.label_space.n_labels)
        assert v.V.shape == (n_vm, v.label_space.n_labels)

    def test_feature_selection_drops_some(self, fitted_vesta):
        assert 2 <= len(fitted_vesta.kept_features) <= 9
        assert fitted_vesta.feature_importance.sum() == pytest.approx(1.0)

    def test_near_best_scores_normalized(self, fitted_vesta):
        nb = fitted_vesta.near_best
        assert np.all((0 < nb) & (nb <= 1.0 + 1e-12))
        # Each workload's best VM scores exactly 1.
        np.testing.assert_allclose(nb.max(axis=1), 1.0)

    def test_kmeans_clusters_cover_catalog(self, fitted_vesta):
        assert fitted_vesta.vm_clusters.shape == (len(fitted_vesta.vms),)
        assert len(np.unique(fitted_vesta.vm_clusters)) > 1

    def test_cluster_smoothing_makes_v_constant_within_cluster(self, fitted_vesta):
        v = fitted_vesta
        for c in np.unique(v.vm_clusters):
            members = np.nonzero(v.vm_clusters == c)[0]
            block = v.V[members]
            assert np.allclose(block, block[0])

    def test_graph_holds_all_sources(self, fitted_vesta):
        names = fitted_vesta.graph.workload_names(target=False)
        assert set(names) == {w.name for w in fitted_vesta.sources}

    def test_defaults_match_paper(self):
        v = VestaSelector()
        assert v.k == 9           # Figure 11
        assert v.lam == 0.75      # Section 5.3
        assert v.probes == 3      # Section 4.2
        assert v.collector.repetitions == 10  # Section 4.1

    def test_select_before_fit_rejected(self, spark_lr):
        with pytest.raises(ValidationError):
            VestaSelector().select(spark_lr)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            VestaSelector(k=0)
        with pytest.raises(ValidationError):
            VestaSelector(probes=-1)
        with pytest.raises(ValidationError):
            VestaSelector(vms=())


class TestOnlineSession:
    @pytest.fixture(scope="class")
    def session(self, fitted_vesta):
        return fitted_vesta.online(get_workload("spark-lr"))

    def test_initial_reference_vms(self, session):
        # Sandbox + 3 probes (Section 4.2).
        assert session.reference_vm_count == 4
        assert session.sandbox_vm.name in session.observations
        for vm in session.probe_vms:
            assert vm.name in session.observations

    def test_completed_row_nonnegative(self, session, fitted_vesta):
        row = session.completed_row
        assert row.shape == (fitted_vesta.label_space.n_labels,)
        assert np.all(row >= 0)
        assert row.sum() > 0

    def test_predictions_cover_catalog(self, session, fitted_vesta):
        pred = session.predict_runtimes()
        assert pred.shape == (len(fitted_vesta.vms),)
        assert np.all(pred > 0)

    def test_observed_vms_predict_exactly(self, session, fitted_vesta):
        pred = session.predict_runtimes()
        for name, obs in session.observations.items():
            assert pred[fitted_vesta.vm_index(name)] == pytest.approx(obs)

    def test_predict_single_vm_consistent(self, session, fitted_vesta):
        pred = session.predict_runtimes()
        assert session.predict_runtime("z1d.xlarge") == pytest.approx(
            pred[fitted_vesta.vm_index("z1d.xlarge")]
        )

    def test_budget_predictions_scale_with_price(self, session, fitted_vesta):
        budgets = session.predict_budgets()
        assert budgets.shape == (len(fitted_vesta.vms),)
        assert np.all(budgets > 0)

    def test_recommendation_fields(self, session):
        rec = session.recommend()
        assert isinstance(rec, Recommendation)
        assert rec.workload == "spark-lr"
        assert rec.objective == "time"
        assert rec.vm_name in rec.predictions
        assert rec.predicted_runtime_s > 0
        assert rec.predicted_budget_usd > 0

    def test_recommend_is_argmin_of_predictions(self, session):
        rec = session.recommend()
        assert rec.predicted_runtime_s == pytest.approx(min(rec.predictions.values()))

    def test_budget_objective_prefers_cheaper_vm(self, session):
        time_rec = session.recommend("time")
        budget_rec = session.recommend("budget")
        assert budget_rec.predicted_budget_usd <= time_rec.predicted_budget_usd

    def test_invalid_objective_rejected(self, session):
        with pytest.raises(ValidationError):
            session.recommend("carbon")

    def test_step_observes_new_vm(self, fitted_vesta):
        session = fitted_vesta.online(get_workload("spark-grep"))
        before = session.reference_vm_count
        vm_name, runtime = session.step()
        assert session.reference_vm_count == before + 1
        assert runtime > 0
        assert vm_name in session.observations

    def test_observe_is_idempotent(self, fitted_vesta):
        session = fitted_vesta.online(get_workload("spark-count"))
        first = session.observe("m5.2xlarge")
        count = session.reference_vm_count
        second = session.observe("m5.2xlarge")
        assert first == second
        assert session.reference_vm_count == count

    def test_observe_unknown_vm_rejected(self, session):
        with pytest.raises(ValidationError):
            session.observe("quantum.42xlarge")


class TestTransferBehaviour:
    def test_reproducible_selection(self):
        a = VestaSelector(seed=11, sources=training_set()[:6]).fit()
        b = VestaSelector(seed=11, sources=training_set()[:6]).fit()
        ra = a.select(get_workload("spark-grep"))
        rb = b.select(get_workload("spark-grep"))
        assert ra.vm_name == rb.vm_name
        assert ra.predicted_runtime_s == rb.predicted_runtime_s

    def test_outlier_target_flagged_non_convergent(self, fitted_vesta):
        """A synthetic workload with an alien correlation signature should
        trip the paper's converge limitation (the Spark-CF mechanism)."""
        session = fitted_vesta.online(get_workload("spark-lr"))
        # Forge a target row orthogonal to every source: mass on intervals
        # no source occupies.
        alien = np.zeros(fitted_vesta.label_space.n_labels)
        occupied = fitted_vesta.U.sum(axis=0) > 0
        alien[~occupied] = 1.0
        sims = fitted_vesta.predictor.similarities(alien)
        assert sims.max() < fitted_vesta.match_threshold

    def test_selection_quality_vs_ground_truth(self, fitted_vesta, ground_truth):
        """The headline behaviour: near-best picks from 4 reference VMs."""
        errors = []
        for name in ("spark-lr", "spark-kmeans", "spark-pca", "spark-count"):
            spec = get_workload(name)
            rec = fitted_vesta.select(spec)
            errors.append(ground_truth.selection_error(spec, rec.vm_name))
        assert float(np.mean(errors)) < 0.25

    def test_in_framework_selection_quality(self, fitted_vesta, ground_truth):
        for name in ("hadoop-nutch", "hive-aggregation"):
            spec = get_workload(name)
            rec = fitted_vesta.select(spec)
            assert ground_truth.selection_error(spec, rec.vm_name) < 0.3


class TestCorrelationProbeSelection:
    """The family-spread subset used for correlation-signature profiling."""

    def test_exact_count_when_enough_families(self):
        from repro.cloud.vmtypes import catalog

        vms = catalog()
        sel = VestaSelector(vms=vms, correlation_probe_count=8)
        picked = sel._corr_probe_vms()
        assert len(picked) == 8
        # One VM per family: with >= 8 families no family repeats.
        assert len({vm.family for vm in picked}) == 8

    @pytest.mark.parametrize("count", [1, 3, 5, 8, 12])
    def test_exact_count_across_requests(self, count):
        from repro.cloud.vmtypes import catalog

        sel = VestaSelector(vms=catalog(), correlation_probe_count=count)
        assert len(sel._corr_probe_vms()) == count

    def test_topped_up_when_fewer_families_than_count(self):
        from repro.cloud.vmtypes import catalog

        # Restrict to two families; ask for more probes than families.
        vms = tuple(vm for vm in catalog() if vm.family in ("M5", "C4"))
        assert len({vm.family for vm in vms}) == 2
        sel = VestaSelector(vms=vms, correlation_probe_count=5)
        picked = sel._corr_probe_vms()
        assert len(picked) == 5
        assert len({vm.name for vm in picked}) == 5
        # Every family is still represented before any is repeated.
        assert {vm.family for vm in picked} == {"M5", "C4"}

    def test_order_independent(self):
        from repro.cloud.vmtypes import catalog

        vms = catalog()
        forward = VestaSelector(vms=vms, correlation_probe_count=8)
        reverse = VestaSelector(
            vms=tuple(reversed(vms)), correlation_probe_count=8
        )
        shuffled = VestaSelector(
            vms=tuple(np.random.default_rng(3).permutation(np.array(vms, dtype=object))),
            correlation_probe_count=8,
        )
        names = {vm.name for vm in forward._corr_probe_vms()}
        assert {vm.name for vm in reverse._corr_probe_vms()} == names
        assert {vm.name for vm in shuffled._corr_probe_vms()} == names

    def test_prefers_mid_sizes(self):
        from repro.cloud.vmtypes import SIZE_LADDER, catalog

        sel = VestaSelector(vms=catalog(), correlation_probe_count=8)
        ladder = list(SIZE_LADDER)
        mid = ladder.index("xlarge")
        for vm in sel._corr_probe_vms():
            # Each pick is its family's closest-to-xlarge shape.
            family = [v for v in catalog() if v.family == vm.family]
            best = min(abs(ladder.index(v.size) - mid) for v in family)
            assert abs(ladder.index(vm.size) - mid) == best
