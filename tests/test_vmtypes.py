"""Tests for the Table-4 VM catalog."""

import numpy as np
import pytest

from repro.cloud.vmtypes import (
    SIZE_LADDER,
    VMCategory,
    VMType,
    catalog,
    families,
    get_vm_type,
    spec_matrix,
    ten_typical_vm_types,
    vm_names,
)
from repro.errors import CatalogError


class TestCatalogStructure:
    def test_twenty_families_five_sizes(self):
        fams = families()
        assert len(fams) == 20
        assert all(len(f.sizes) == 5 for f in fams.values())

    def test_hundred_concrete_types(self):
        assert len(catalog()) == 100

    def test_names_unique_and_stable(self):
        names = vm_names()
        assert len(set(names)) == len(names)
        assert names == tuple(vm.name for vm in catalog())

    def test_table4_families_present(self):
        expected = {
            "T3", "T3a", "M5", "M5a", "M5n", "C4", "C5", "C5n", "C5d", "C4n",
            "R4", "R5", "R5a", "R5n", "X1", "z1d", "G3", "G4", "I3", "I3en",
        }
        assert set(families()) == expected

    def test_all_five_categories_used(self):
        cats = {vm.category for vm in catalog()}
        assert cats == set(VMCategory)

    def test_g4_sizes_match_table4(self):
        sizes = {vm.size for vm in catalog() if vm.family == "G4"}
        assert sizes == {"large", "2xlarge", "4xlarge", "8xlarge", "16xlarge"}

    def test_burstable_only_t_family(self):
        for fam in families().values():
            if fam.name in ("T3", "T3a"):
                assert fam.burst_baseline < 1.0
            else:
                assert fam.burst_baseline == 1.0


class TestVMTypeValues:
    def test_m5_xlarge_matches_ec2(self):
        vm = get_vm_type("m5.xlarge")
        assert vm.vcpus == 4
        assert vm.mem_gb == pytest.approx(16.0)
        assert vm.price_per_hour == pytest.approx(0.192)

    def test_r5_has_more_memory_per_vcpu_than_c5(self):
        assert get_vm_type("r5.large").mem_per_vcpu > get_vm_type("c5.large").mem_per_vcpu

    def test_price_scales_linearly_with_size(self):
        for fam in ("M5", "C5", "R5"):
            large = get_vm_type(f"{fam.lower()}.large")
            x8 = get_vm_type(f"{fam.lower()}.8xlarge")
            assert x8.price_per_hour == pytest.approx(16 * large.price_per_hour)

    def test_io_scales_sublinearly_with_size(self):
        large = get_vm_type("i3.large")
        x8 = get_vm_type("i3.8xlarge")
        assert large.disk_mbps * 8 < x8.disk_mbps < large.disk_mbps * 16

    def test_t3_throttled_against_m5(self):
        assert get_vm_type("t3.large").cpu_speed < get_vm_type("m5.large").cpu_speed

    def test_z1d_highest_clock(self):
        z = get_vm_type("z1d.large").cpu_speed
        assert all(vm.cpu_speed <= z for vm in catalog())

    def test_storage_optimized_has_most_disk(self):
        i3en = get_vm_type("i3en.xlarge").disk_mbps
        for name in ("m5.xlarge", "c5.xlarge", "r5.xlarge"):
            assert get_vm_type(name).disk_mbps < i3en

    def test_n_families_have_more_network(self):
        assert get_vm_type("m5n.large").net_gbps > get_vm_type("m5.large").net_gbps
        assert get_vm_type("c5n.large").net_gbps > get_vm_type("c5.large").net_gbps

    def test_all_resources_positive(self, vms):
        for vm in vms:
            assert vm.vcpus > 0
            assert vm.mem_gb > 0
            assert vm.cpu_speed > 0
            assert vm.disk_mbps > 0
            assert vm.net_gbps > 0
            assert vm.price_per_hour > 0


class TestLookups:
    def test_get_vm_type_roundtrip(self, vms):
        for vm in vms:
            assert get_vm_type(vm.name) is vm

    def test_unknown_name_raises(self):
        with pytest.raises(CatalogError):
            get_vm_type("m7i.mega")

    def test_family_rejects_unknown_size(self):
        with pytest.raises(CatalogError):
            families()["M5"].vm_type("16xlarge")

    def test_negative_resources_rejected(self):
        with pytest.raises(CatalogError):
            VMType(
                name="bad", family="B", category=VMCategory.GENERAL_PURPOSE,
                size="large", vcpus=0, mem_gb=8, cpu_speed=1, disk_mbps=1,
                net_gbps=1, price_per_hour=1,
            )


class TestVectors:
    def test_spec_vector_shape_and_content(self, m5_xlarge):
        v = m5_xlarge.spec_vector()
        assert v.shape == (7,)
        assert v[0] == 4  # vcpus
        assert v[1] == pytest.approx(16.0)  # mem

    def test_spec_matrix_covers_catalog(self, vms):
        m = spec_matrix()
        assert m.shape == (len(vms), 7)
        assert np.all(m > 0)

    def test_ten_typical_span_all_categories(self):
        ten = ten_typical_vm_types()
        assert len(ten) == 10
        assert len({vm.name for vm in ten}) == 10
        assert {vm.category for vm in ten} == set(VMCategory)

    def test_size_ladder_monotone(self):
        scales = [SIZE_LADDER[s]["scale"] for s in
                  ("small", "medium", "large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge")]
        assert scales == sorted(scales)
