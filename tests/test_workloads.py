"""Tests for the Table-3 workload suite."""

import pytest

from repro.errors import CatalogError, ValidationError
from repro.workloads.catalog import (
    ALGORITHM_PROFILES,
    SOURCE_TESTING,
    SOURCE_TRAINING,
    TARGET_SET,
    all_workloads,
    get_workload,
    source_set,
    target_set,
    testing_set as tbl3_testing_set,
    training_set,
    workload_names,
)
from repro.workloads.datasets import DATASET_SCALES_GB, dataset_gb
from repro.workloads.spec import DemandProfile, Suite, UseCase, WorkloadSpec


class TestTable3Structure:
    def test_thirty_workloads(self):
        assert len(all_workloads()) == 30

    def test_split_sizes_match_table3(self):
        assert len(SOURCE_TRAINING) == 13
        assert len(SOURCE_TESTING) == 5
        assert len(TARGET_SET) == 12

    def test_source_is_hadoop_and_hive_only(self):
        assert {w.framework for w in source_set()} == {"hadoop", "hive"}

    def test_target_is_spark_only(self):
        assert all(w.framework == "spark" for w in target_set())

    def test_names_unique(self):
        names = workload_names()
        assert len(set(names)) == 30

    def test_specific_table3_entries(self):
        for name in (
            "hadoop-terasort", "hadoop-identify", "hive-full-join",
            "hadoop-nutch", "hive-aggregation", "spark-svd++", "spark-cf",
        ):
            assert get_workload(name).name == name

    def test_all_use_cases_covered(self):
        assert {w.use_case for w in all_workloads()} == set(UseCase)

    def test_both_suites_present(self):
        assert {w.suite for w in all_workloads()} == set(Suite)

    def test_unknown_workload_raises(self):
        with pytest.raises(CatalogError):
            get_workload("flink-wordcount")

    def test_splits_are_views_of_catalog(self):
        combined = training_set() + tbl3_testing_set() + target_set()
        assert combined == all_workloads()


class TestDemandProfiles:
    def test_shared_across_frameworks(self):
        assert get_workload("hadoop-kmeans").demand is get_workload("spark-kmeans").demand
        assert get_workload("hadoop-lr").demand is get_workload("spark-lr").demand

    def test_svdpp_carries_variance_boost(self):
        assert ALGORITHM_PROFILES["svd++"].variance_boost > 1.0

    def test_ml_profiles_are_iterative_and_cacheable(self):
        for alg in ("lr", "kmeans", "linear", "als", "pca"):
            p = ALGORITHM_PROFILES[alg]
            assert p.is_iterative
            assert p.cacheable_fraction > 0

    def test_micro_profiles_single_pass(self):
        for alg in ("terasort", "wordcount", "sort", "grep", "count"):
            assert not ALGORITHM_PROFILES[alg].is_iterative

    def test_compute_intensity_accumulates_iterations(self):
        p = ALGORITHM_PROFILES["kmeans"]
        assert p.compute_intensity == pytest.approx(p.compute_per_gb * p.iterations)

    def test_sort_like_profiles_full_shuffle(self):
        assert ALGORITHM_PROFILES["terasort"].shuffle_fraction == pytest.approx(1.0)
        assert ALGORITHM_PROFILES["sort"].shuffle_fraction == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"compute_per_gb": 0},
            {"compute_per_gb": 1, "shuffle_fraction": -0.1},
            {"compute_per_gb": 1, "iterations": 0},
            {"compute_per_gb": 1, "mem_blowup": 0},
            {"compute_per_gb": 1, "cacheable_fraction": 1.5},
            {"compute_per_gb": 1, "variance_boost": 0},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        defaults = {"shuffle_fraction": 0.1}
        defaults.update(kwargs)
        with pytest.raises(ValidationError):
            DemandProfile(**defaults)


class TestWorkloadSpec:
    def test_hive_specs_have_plans(self):
        for w in all_workloads():
            if w.framework == "hive":
                assert w.sql_ops

    def test_hive_without_plan_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(
                name="hive-x", framework="hive", algorithm="x",
                use_case=UseCase.SQL, suite=Suite.HIBENCH,
                demand=ALGORITHM_PROFILES["scan"], input_gb=1.0,
            )

    def test_unknown_framework_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(
                name="tez-x", framework="tez", algorithm="x",
                use_case=UseCase.MICRO, suite=Suite.HIBENCH,
                demand=ALGORITHM_PROFILES["sort"], input_gb=1.0,
            )

    def test_with_input_preserves_everything_else(self, spark_lr):
        scaled = spark_lr.with_input(1.5)
        assert scaled.input_gb == 1.5
        assert scaled.name == spark_lr.name
        assert scaled.demand is spark_lr.demand

    def test_with_nodes(self, spark_lr):
        assert spark_lr.with_nodes(8).nodes == 8

    def test_nonpositive_input_rejected(self, spark_lr):
        with pytest.raises(ValidationError):
            spark_lr.with_input(0.0)


class TestDatasets:
    def test_paper_quoted_scales(self):
        # Section 5.1: gigantic = 30 GB, huge = 3 GB, large = 300 MB.
        assert dataset_gb("gigantic") == pytest.approx(30.0)
        assert dataset_gb("huge") == pytest.approx(3.0)
        assert dataset_gb("large") == pytest.approx(0.3)

    def test_explicit_size_passthrough(self):
        assert dataset_gb(12.5) == 12.5

    def test_scale_ladder_monotone(self):
        values = list(DATASET_SCALES_GB.values())
        assert values == sorted(values)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValidationError):
            dataset_gb("colossal")

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValidationError):
            dataset_gb(0)
